#include "graph/csr_graph.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "parallel/parallel_for.hpp"
#include "parallel/scan.hpp"

namespace llpmst {

CsrGraph CsrGraph::build(const EdgeList& list, Executor* pool) {
  LLPMST_CHECK_MSG(list.is_normalized(),
                   "CsrGraph::build requires a normalized EdgeList "
                   "(call EdgeList::normalize() first)");
  LLPMST_CHECK_MSG(list.num_edges() < kInvalidEdge,
                   "edge count exceeds 32-bit edge id space");

  CsrGraph g;
  const std::size_t n = list.num_vertices();
  const std::size_t m = list.num_edges();
  g.edges_ = list.edges();

  // Degree counting.  The list is normalized (each edge appears once), so
  // each edge contributes to both endpoints.
  std::vector<std::size_t> counts(n + 1, 0);
  if (pool != nullptr && pool->num_threads() > 1) {
    // Per-thread count arrays would be O(t*n); instead count with atomics —
    // degrees are written once per arc, contention is negligible for m >> t.
    std::vector<std::atomic<std::size_t>> acounts(n);
    for (auto& c : acounts) c.store(0, std::memory_order_relaxed);
    parallel_for(*pool, 0, m, [&](std::size_t i) {
      const WeightedEdge& e = g.edges_[i];
      acounts[e.u].fetch_add(1, std::memory_order_relaxed);
      acounts[e.v].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t v = 0; v < n; ++v) {
      counts[v] = acounts[v].load(std::memory_order_relaxed);
    }
  } else {
    for (const WeightedEdge& e : g.edges_) {
      ++counts[e.u];
      ++counts[e.v];
    }
  }

  // Exclusive scan -> row offsets.
  if (pool != nullptr) {
    exclusive_scan_inplace(*pool, counts);
  } else {
    std::size_t acc = 0;
    for (auto& c : counts) {
      std::size_t v = c;
      c = acc;
      acc += v;
    }
  }
  g.offsets_ = std::move(counts);  // counts now holds n+1 offsets

  // Fill arcs.  Write cursors per vertex; sequential fill keeps arcs sorted
  // by (source, edge id).  The parallel fill uses atomic cursors — arc order
  // within a row is then nondeterministic, which no algorithm relies on, but
  // to keep *runs reproducible* we sort each row afterwards.
  g.targets_.resize(2 * m);
  g.priorities_.resize(2 * m);
  if (pool != nullptr && pool->num_threads() > 1) {
    std::vector<std::atomic<std::size_t>> cursor(n);
    for (std::size_t v = 0; v < n; ++v) {
      cursor[v].store(g.offsets_[v], std::memory_order_relaxed);
    }
    parallel_for(*pool, 0, m, [&](std::size_t i) {
      const WeightedEdge& e = g.edges_[i];
      const EdgePriority p = make_priority(e.w, static_cast<EdgeId>(i));
      std::size_t su = cursor[e.u].fetch_add(1, std::memory_order_relaxed);
      g.targets_[su] = e.v;
      g.priorities_[su] = p;
      std::size_t sv = cursor[e.v].fetch_add(1, std::memory_order_relaxed);
      g.targets_[sv] = e.u;
      g.priorities_[sv] = p;
    });
    // Canonicalize row order (by priority) so builds are deterministic.
    parallel_for(*pool, 0, n, [&](std::size_t v) {
      const std::size_t lo = g.offsets_[v], hi = g.offsets_[v + 1];
      // Sort (priority, target) pairs by priority.
      std::vector<std::pair<EdgePriority, VertexId>> row;
      row.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        row.emplace_back(g.priorities_[i], g.targets_[i]);
      }
      std::sort(row.begin(), row.end());
      for (std::size_t i = lo; i < hi; ++i) {
        g.priorities_[i] = row[i - lo].first;
        g.targets_[i] = row[i - lo].second;
      }
    }, /*chunk=*/64);
  } else {
    std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
    for (std::size_t i = 0; i < m; ++i) {
      const WeightedEdge& e = g.edges_[i];
      const EdgePriority p = make_priority(e.w, static_cast<EdgeId>(i));
      g.targets_[cursor[e.u]] = e.v;
      g.priorities_[cursor[e.u]] = p;
      ++cursor[e.u];
      g.targets_[cursor[e.v]] = e.u;
      g.priorities_[cursor[e.v]] = p;
      ++cursor[e.v];
    }
    // Sequential fill emits rows in ascending edge-id order, which for a
    // normalized list is ascending (u, v) but not ascending *priority*.
    // Sort rows by priority to match the parallel build bit-for-bit.
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t lo = g.offsets_[v], hi = g.offsets_[v + 1];
      std::vector<std::pair<EdgePriority, VertexId>> row;
      row.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        row.emplace_back(g.priorities_[i], g.targets_[i]);
      }
      std::sort(row.begin(), row.end());
      for (std::size_t i = lo; i < hi; ++i) {
        g.priorities_[i] = row[i - lo].first;
        g.targets_[i] = row[i - lo].second;
      }
    }
  }

  // Per-vertex minimum incident priority: rows are sorted, so it is the
  // first arc of each non-empty row.
  g.mwe_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    g.mwe_[v] = (g.offsets_[v] == g.offsets_[v + 1])
                    ? kInfinitePriority
                    : g.priorities_[g.offsets_[v]];
  }

  // Per-arc MWE flags (see arc_mwe_flags): arc from v is flagged when its
  // edge is the MWE of v or of the target.
  g.mwe_flags_.resize(2 * m);
  const auto fill_flags = [&](std::size_t v) {
    for (std::size_t i = g.offsets_[v]; i < g.offsets_[v + 1]; ++i) {
      const EdgePriority p = g.priorities_[i];
      g.mwe_flags_[i] =
          (p == g.mwe_[v] || p == g.mwe_[g.targets_[i]]) ? 1 : 0;
    }
  };
  if (pool != nullptr) {
    parallel_for(*pool, 0, n, fill_flags, /*chunk=*/256);
  } else {
    for (std::size_t v = 0; v < n; ++v) fill_flags(v);
  }

  return g;
}

TotalWeight CsrGraph::total_weight() const {
  TotalWeight sum = 0;
  for (const WeightedEdge& e : edges_) sum += e.w;
  return sum;
}

}  // namespace llpmst
