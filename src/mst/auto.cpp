#include "mst/auto.hpp"

#include <exception>
#include <string>

#include "core/run_context.hpp"
#include "mst/kruskal.hpp"
#include "mst/registry.hpp"
#include "obs/metrics.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

namespace {

/// Runs the chosen parallel algorithm, converting every failure mode —
/// structured outcome, injected FailpointError, bad_alloc, any other
/// exception — into a (ok, reason) verdict the portfolio can act on.
template <typename Run>
bool run_guarded(Run&& run, MstResult& result, std::string& reason) {
  try {
    result = run();
  } catch (const fail::FailpointError& e) {
    reason = std::string("exception: ") + e.what();
    return false;
  } catch (const std::bad_alloc&) {
    reason = "exception: out of memory";
    return false;
  } catch (const std::exception& e) {
    reason = std::string("exception: ") + e.what();
    return false;
  }
  if (result.stats.outcome != RunOutcome::kOk) {
    reason = run_outcome_name(result.stats.outcome);
    return false;
  }
  if (!result.stats.llp_converged) {
    reason = "non_converged";
    return false;
  }
  return true;
}

/// The paper's preference order for the given shape, resolved against the
/// registry and filtered by capability: a disconnected input discards every
/// entry that cannot produce a forest.  Falls back to the Kruskal oracle if
/// (in some trimmed build) no preferred entry is registered.
const MstAlgorithm& select_algorithm(bool connected, std::size_t threads,
                                     const AutoMstOptions& options) {
  const char* preferred[3] = {nullptr, nullptr, nullptr};
  if (!connected || threads >= options.boruvka_crossover) {
    preferred[0] = "llp-boruvka";
    preferred[1] = "parallel-boruvka";
  } else if (threads == 1) {
    preferred[0] = "llp-prim";
  } else {
    preferred[0] = "llp-prim-parallel";
    preferred[1] = "llp-boruvka";
  }
  for (const char* name : preferred) {
    if (name == nullptr) continue;
    const MstAlgorithm* a = find_mst_algorithm(name);
    if (a == nullptr) continue;
    if (!connected && !a->caps.msf_capable) continue;
    return *a;
  }
  return mst_algorithm("kruskal");
}

}  // namespace

AutoMstResult minimum_spanning_forest(const CsrGraph& g, RunContext& ctx,
                                      const AutoMstOptions& options) {
  AutoMstResult out;
  if (g.num_vertices() == 0) {
    out.algorithm = "trivial";
    return out;
  }

  bool connected = false;
  switch (options.connectivity) {
    case Connectivity::kConnected:
      connected = true;
      break;
    case Connectivity::kDisconnected:
      connected = false;
      break;
    case Connectivity::kUnknown:
      // Cached per (context, graph): downstream verification through the
      // same context reuses the answer instead of recomputing components.
      connected = ctx.connected(g);
      break;
  }

  const MstAlgorithm& algo =
      select_algorithm(connected, ctx.threads(), options);
  out.algorithm = algo.name;
  std::string reason;
  bool ok =
      run_guarded([&] { return algo.run(g, ctx); }, out.result, reason);

  if (!ok) {
    // A cancel requested by the CALLER is an instruction to stop, not a
    // failure to route around — honour it and return the partial result.
    if (options.fallback_to_sequential && !ctx.user_cancelled()) {
      if (obs::kCompiledIn) {
        obs::counter("auto/fallbacks").increment();
        obs::add_warning("auto: " + out.algorithm + " failed (" + reason +
                         "); falling back to sequential kruskal");
      }
      out.fell_back = true;
      out.fallback_reason = reason;
      out.algorithm = "kruskal";
      // The fallback must complete even when the run's DEADLINE already
      // expired (that expiry is why we are here), so it polls only the
      // caller's own token: a user cancel arriving mid-fallback still
      // stops the scan.
      out.result = kruskal_cancellable(g, ctx.external_cancel());
    } else {
      // No fallback: surface the partial result; the caller inspects
      // result.stats.outcome / fallback_reason.
      out.fallback_reason = reason;
    }
  }
  return out;
}

}  // namespace llpmst
