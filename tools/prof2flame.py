#!/usr/bin/env python3
"""Render llpmst folded-stack profiles as a flamegraph SVG or a top-N table.

    tools/prof2flame.py prof.folded --svg flame.svg   # write an SVG
    tools/prof2flame.py prof.folded --top 15          # terminal table
    tools/prof2flame.py prof.folded --check           # lint only

Input is the folded-stack format written by `mst_tool --profile-out` (one
stack per line, semicolon-separated frames, a space, and the sample
count — the same format Brendan Gregg's flamegraph.pl consumes):

    mst_tool/solve;llp_boruvka;round;contract;main;boruvka_engine(...) 42

The leading frames are the live PhaseTimer path at the moment of the
sample ("(no_phase)" when none was open); the remainder is the captured
code stack, outermost first.  Counts aggregate across duplicate stacks.

--check validates the format without rendering: every non-blank line must
be "<frames> <count>" with non-empty ';'-separated frames, no embedded
whitespace in a frame, and a positive integer count.  Exits non-zero
listing every malformed line, so CI can lint profiler output cheaply.

The SVG is self-contained (inline CSS + JS hover titles, no external
assets) so it opens in any browser.  Uses only the standard library.
"""
import argparse
import html
import sys


def parse_folded(path):
    """Returns (stacks, errors): stacks is a dict mapping frame-tuples to
    aggregated sample counts; errors lists 'path:line: message' strings."""
    stacks = {}
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return {}, [f"{path}: unreadable: {e}"]
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        where = f"{path}:{lineno}"
        head, sep, count_str = line.rpartition(" ")
        if not sep or not head:
            errors.append(f"{where}: no '<frames> <count>' separator")
            continue
        try:
            count = int(count_str)
        except ValueError:
            errors.append(f"{where}: count {count_str!r} is not an integer")
            continue
        if count <= 0:
            errors.append(f"{where}: count {count} is not positive")
            continue
        frames = tuple(head.split(";"))
        bad = [fr for fr in frames
               if not fr or any(c.isspace() for c in fr)]
        if bad:
            errors.append(f"{where}: empty or whitespace-bearing frame(s) "
                          f"{bad!r}")
            continue
        stacks[frames] = stacks.get(frames, 0) + count
    return stacks, errors


def print_top(stacks, n, out=sys.stdout):
    """Prints the N hottest stacks (by aggregated samples) as a table."""
    total = sum(stacks.values())
    print(f"{total} samples, {len(stacks)} unique stacks", file=out)
    if not stacks:
        return
    ranked = sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
    width = len(str(ranked[0][1]))
    print(f"{'samples':>{max(width, 7)}}  {'pct':>6}  stack (leaf last)",
          file=out)
    for frames, count in ranked:
        pct = 100.0 * count / total
        print(f"{count:>{max(width, 7)}}  {pct:5.1f}%  {';'.join(frames)}",
              file=out)


def build_tree(stacks):
    """Folds stacks into a nested {frame: [count, children]} trie."""
    root = [sum(stacks.values()), {}]
    for frames, count in stacks.items():
        node = root
        for frame in frames:
            child = node[1].setdefault(frame, [0, {}])
            child[0] += count
            node = child
    return root


# Deterministic warm palette: hash the frame name onto a red-orange ramp so
# re-renders of the same profile produce identical SVGs (diff-friendly).
def frame_color(name):
    h = 2166136261
    for ch in name.encode("utf-8"):
        h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
    r = 205 + (h & 0x3F) % 50
    g = 60 + ((h >> 8) & 0xFF) % 120
    b = ((h >> 16) & 0x3F) % 60
    return f"rgb({r},{g},{b})"


FRAME_H = 17
FONT_SIZE = 11
MIN_W = 0.4  # px; narrower boxes are dropped (unreadable anyway)


def render_svg(stacks, width=1200):
    """Renders a classic bottom-up flamegraph: root at the bottom, leaves
    on top, box width proportional to inclusive samples."""
    root = build_tree(stacks)
    total = root[0]

    def depth_of(node):
        return 1 + max((depth_of(c) for c in node[1].values()), default=0)

    depth = depth_of(root) if total else 1
    height = (depth + 1) * FRAME_H + 40
    parts = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="monospace">')
    parts.append(
        "<style>rect{stroke:#333;stroke-width:0.4}"
        "rect:hover{stroke:#000;stroke-width:1.2}"
        f"text{{font-size:{FONT_SIZE}px;pointer-events:none}}</style>")
    parts.append(
        f'<text x="{width / 2}" y="16" text-anchor="middle">'
        f'llpmst profile — {total} samples, {len(stacks)} stacks</text>')

    def emit(name, node, x, y, w):
        count = node[0]
        title = html.escape(f"{name} ({count} samples, "
                            f"{100.0 * count / total:.1f}%)", quote=True)
        parts.append(
            f'<g><title>{title}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{FRAME_H - 1}" fill="{frame_color(name)}"/>')
        # ~0.62 em per monospace glyph at 11px; clip the label to the box.
        max_chars = int(w / (FONT_SIZE * 0.62))
        if max_chars >= 3:
            label = name if len(name) <= max_chars else \
                name[:max_chars - 1] + "…"
            parts.append(f'<text x="{x + 2:.2f}" y="{y + FRAME_H - 5}">'
                         f'{html.escape(label)}</text>')
        parts.append("</g>")
        cx = x
        for child_name in sorted(node[1]):
            child = node[1][child_name]
            cw = w * child[0] / count if count else 0.0
            if cw >= MIN_W:
                emit(child_name, child, cx, y - FRAME_H, cw)
            cx += cw

    base_y = height - FRAME_H - 4
    if total:
        emit("all", root, 0.0, base_y, float(width))
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def main():
    ap = argparse.ArgumentParser(
        description="Render llpmst folded-stack profiles "
                    "(mst_tool --profile-out) as SVG flamegraphs or "
                    "terminal top-N tables.")
    ap.add_argument("folded", help="folded-stack input file")
    ap.add_argument("--svg", metavar="OUT",
                    help="write a self-contained flamegraph SVG here")
    ap.add_argument("--top", type=int, default=10, metavar="N",
                    help="print the N hottest stacks (default 10)")
    ap.add_argument("--width", type=int, default=1200,
                    help="SVG width in pixels (default 1200)")
    ap.add_argument("--check", action="store_true",
                    help="lint the folded format only; exit non-zero on "
                         "malformed lines, render nothing")
    args = ap.parse_args()

    stacks, errors = parse_folded(args.folded)
    if errors:
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        return 1
    if args.check:
        total = sum(stacks.values())
        print(f"{args.folded}: ok ({total} samples, {len(stacks)} stacks)")
        return 0

    print_top(stacks, args.top)
    if args.svg:
        try:
            with open(args.svg, "w", encoding="utf-8") as f:
                f.write(render_svg(stacks, args.width))
        except OSError as e:
            print(f"FAIL {args.svg}: {e}", file=sys.stderr)
            return 1
        print(f"wrote {args.svg}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
