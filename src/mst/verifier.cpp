#include "mst/verifier.hpp"

#include <algorithm>
#include <vector>

#include "core/run_context.hpp"
#include "ds/union_find.hpp"
#include "graph/algorithms/connected_components.hpp"
#include "mst/forest_path.hpp"

namespace llpmst {

namespace {

/// Shape + spanning check; on success also reports the component count its
/// union-find derived (a free byproduct the ctx overloads cache).
VerifyResult spanning_impl(const CsrGraph& g, const MstResult& r,
                           std::size_t* components_out) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();

  // Edge ids valid and distinct (result edges are sorted by contract).
  for (std::size_t i = 0; i < r.edges.size(); ++i) {
    if (r.edges[i] >= m) return {false, "edge id out of range"};
    if (i > 0 && r.edges[i] <= r.edges[i - 1]) {
      return {false, "edge ids not strictly ascending (duplicate?)"};
    }
  }

  // Acyclic: each edge must join two different UF components.
  UnionFind uf(n);
  TotalWeight weight = 0;
  bool overflow = false;
  for (EdgeId e : r.edges) {
    const WeightedEdge& we = g.edge(e);
    if (!uf.unite(we.u, we.v)) return {false, "chosen edges contain a cycle"};
    if (!checked_weight_add(weight, we.w)) overflow = true;
  }
  if (overflow != r.weight_overflow) {
    return {false, overflow
                       ? "total_weight overflowed but the result did not "
                         "flag it"
                       : "result flags weight_overflow but the sum fits"};
  }
  if (!overflow && weight != r.total_weight) {
    return {false, "total_weight does not match the edge set"};
  }

  // Spanning: same number of components as the input graph, and every input
  // edge must stay within one forest component.
  for (const WeightedEdge& we : g.edges()) {
    if (uf.find(we.u) != uf.find(we.v)) {
      return {false, "forest does not span a connected component"};
    }
  }
  if (r.num_trees != uf.num_sets()) {
    return {false, "num_trees does not match the component count"};
  }
  if (components_out != nullptr) *components_out = uf.num_sets();
  return {true, {}};
}

/// Cycle property: every non-tree edge must be the heaviest edge on the
/// cycle it closes.  With unique priorities this certifies minimality.
VerifyResult cycle_property(const CsrGraph& g, const MstResult& r) {
  std::vector<bool> in_tree(g.num_edges(), false);
  for (EdgeId e : r.edges) in_tree[e] = true;

  const ForestPathIndex f(g, r.edges);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (in_tree[e]) continue;
    const WeightedEdge& we = g.edge(e);
    const EdgePriority p = make_priority(we.w, e);
    const EdgePriority path_max = f.max_on_path(we.u, we.v);
    if (!(path_max < p)) {
      return {false, "cycle property violated: non-tree edge " +
                         std::to_string(e) + " is lighter than a tree edge "
                         "on its cycle"};
    }
  }
  return {true, {}};
}

}  // namespace

VerifyResult verify_spanning_forest(const CsrGraph& g, const MstResult& r) {
  return spanning_impl(g, r, nullptr);
}

VerifyResult verify_spanning_forest(const CsrGraph& g, const MstResult& r,
                                    RunContext& ctx) {
  // Fast cross-check against the cached connectivity answer (e.g. from the
  // mst::auto selection check) before any edge work.
  if (ctx.components_cached(g) && r.num_trees != ctx.num_components(g)) {
    return {false, "num_trees does not match the component count"};
  }
  std::size_t components = 0;
  VerifyResult v = spanning_impl(g, r, &components);
  if (v.ok) ctx.seed_components(g, components);
  return v;
}

VerifyResult verify_msf(const CsrGraph& g, const MstResult& r) {
  VerifyResult shape = verify_spanning_forest(g, r);
  if (!shape.ok) return shape;
  return cycle_property(g, r);
}

VerifyResult verify_msf(const CsrGraph& g, const MstResult& r,
                        RunContext& ctx) {
  VerifyResult shape = verify_spanning_forest(g, r, ctx);
  if (!shape.ok) return shape;
  return cycle_property(g, r);
}

}  // namespace llpmst
