// Generic Lattice Linear Predicate (LLP) detection engine — the paper's
// Algorithm 1.
//
// The combinatorial problem is modelled as finding the least vector G in a
// lattice that satisfies a lattice-linear predicate B.  The caller supplies,
// per index j:
//   forbidden(j) — true if G cannot satisfy B unless G[j] advances;
//   advance(j)   — move G[j] up (must make progress toward not-forbidden).
//
// The engine repeatedly sweeps all indices, advancing every forbidden one,
// until a full sweep finds none ("no element is forbidden, we have our
// solution").  Sweeps run sequentially or data-parallel over a ThreadPool;
// lattice-linearity guarantees that concurrently advancing distinct
// forbidden indices is safe, which is why no locking appears here — the
// caller's advance() must only touch G[j] (plus reads of other entries).
//
// The MST algorithms specialize this loop with bespoke scheduling (worklists
// instead of full sweeps) for efficiency; llp_components and
// llp_shortest_path use this engine directly, demonstrating the framework's
// claim that one harness solves many problems.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst {

struct LlpStats {
  std::uint64_t sweeps = 0;    // full passes over the index space
  std::uint64_t advances = 0;  // total advance() calls
  bool converged = false;      // false iff the sweep cap was hit
};

struct LlpOptions {
  /// Safety cap on sweeps; 0 means "4 * n + 16" (every problem we instantiate
  /// converges well below that — the cap converts a buggy predicate into a
  /// diagnosable non-convergence instead of a hang).
  std::uint64_t max_sweeps = 0;
};

/// Runs Algorithm 1 over indices [0, n).  Returns statistics; `converged`
/// is true when a full sweep found no forbidden index.
template <typename Forbidden, typename Advance>
LlpStats llp_solve(ThreadPool& pool, std::size_t n, Forbidden&& forbidden,
                   Advance&& advance, const LlpOptions& options = {}) {
  LlpStats stats;
  const std::uint64_t cap =
      options.max_sweeps != 0 ? options.max_sweeps : 4 * n + 16;

  obs::PhaseTimer solve_span("llp_solve");
  std::atomic<std::uint64_t> advanced{0};
  for (;;) {
    if (stats.sweeps >= cap) break;  // converged stays false
    ++stats.sweeps;
    advanced.store(0, std::memory_order_relaxed);
    {
      // Per-sweep span ("llp_solve/sweep"): one enabled() check when obs is
      // idle, a real span in traces — this is the per-sweep visibility the
      // Algorithm 1 analysis needs.
      obs::PhaseTimer sweep_span("sweep");
      parallel_for(pool, 0, n, [&](std::size_t j) {
        // Re-testing forbidden(j) right before advancing is the whole
        // synchronization story: lattice-linearity makes a stale "forbidden"
        // verdict impossible (forbidden states stay forbidden until
        // advanced) and advancing only G[j] keeps indices independent.
        std::uint64_t local = 0;
        if (forbidden(j)) {
          advance(j);
          ++local;
        }
        if (local != 0) advanced.fetch_add(local, std::memory_order_relaxed);
      });
    }
    const std::uint64_t a = advanced.load(std::memory_order_relaxed);
    stats.advances += a;
    if (a == 0) {
      stats.converged = true;
      break;
    }
  }
  if (obs::kCompiledIn) {
    obs::counter("llp_solve/sweeps").add(stats.sweeps);
    obs::counter("llp_solve/advances").add(stats.advances);
    if (!stats.converged) obs::counter("llp_solve/cap_hits").increment();
  }
  return stats;
}

}  // namespace llpmst
