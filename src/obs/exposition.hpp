// OpenMetrics / Prometheus text exposition of the observability state:
// registered counters and gauges, aggregated phase timings, the scheduler
// summary, per-solver round counts, and a build-info marker.  This is what
// `mst_tool --stats-out FILE` writes and what a future llpmstd would serve
// on /metrics — the pull-based twin of the JSON run report.
//
// Name mapping (docs/observability.md has the full table):
//   * every family is prefixed "llpmst_"; '/' and any other character
//     outside [a-zA-Z0-9_] in a metric name becomes '_'
//   * obs counters  -> counter families; samples carry the mandatory
//     "_total" suffix (llpmst_boruvka_rounds_total)
//   * obs gauges    -> gauge families, name used as-is after sanitizing
//   * phases        -> llpmst_phase_seconds_total{phase="..."} plus
//                      llpmst_phase_count_total{phase="..."}
//   * scheduler     -> llpmst_sched_utilization_ratio,
//                      llpmst_sched_steal_success_ratio, and per-worker
//                      busy/idle seconds keyed by a worker="N" label
//   * rounds        -> llpmst_solver_rounds{site="..."} and
//                      llpmst_solver_round_seconds_total{site="..."}
//   * always        -> llpmst_build_info{obs="0"|"1"} 1 and a final "# EOF"
//
// Sanitization can collide two distinct metric names; the first family
// keeps the name and later collisions are skipped with a warning comment
// in the output (exposing two families with one name is a spec violation).
//
// Both build flavours compile this: under LLPMST_OBS=0 the document
// degrades to build_info + EOF, which still parses — downstream scrapers
// never branch on the flavour.
#pragma once

#include <string>

namespace llpmst::obs {

/// Renders the current observability state as an OpenMetrics text document
/// (always syntactically valid, terminated by "# EOF").
[[nodiscard]] std::string render_openmetrics();

/// The HTTP Content-Type an OpenMetrics response must carry (llpmstd's
/// /stats endpoint) — version-pinned per the exposition format spec.
[[nodiscard]] const char* openmetrics_content_type();

/// Writes render_openmetrics() to `path`.  Returns false and sets *error
/// on I/O failure.
bool write_openmetrics(const std::string& path, std::string* error);

}  // namespace llpmst::obs
