// Portfolio entry point: pick the MST/MSF algorithm the paper's conclusions
// recommend for the given graph and thread budget.
//
// Section VII/VIII's findings, operationalized as a preference order over
// the registry (mst/registry.hpp), capability-filtered per input:
//   * 1 thread            -> LLP-Prim (1T) — fastest sequential (Fig. 2);
//   * few threads (< the crossover the paper places around 8) and a
//     connected graph     -> parallel LLP-Prim (Fig. 3 left);
//   * many threads, or a disconnected graph (the Prim family cannot run)
//                         -> LLP-Boruvka (Fig. 3 right / Fig. 4).
//
// The crossover is a tunable with the paper's observed default.  Deadline
// and external cancellation come from the RunContext (set_deadline_ms /
// set_cancel); connectivity is taken from the context's cache unless the
// caller passes a hint.
#pragma once

#include <string>

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

/// Caller knowledge about the input's connectivity (kUnknown triggers a
/// cached union-find check through RunContext::connected()).
enum class Connectivity { kUnknown, kConnected, kDisconnected };

struct AutoMstOptions {
  /// Thread count at which the Boruvka family starts winning (Fig. 3's ~8).
  std::size_t boruvka_crossover = 8;
  /// Connectivity hint; kUnknown = consult the RunContext's cache.
  Connectivity connectivity = Connectivity::kUnknown;
  /// When the chosen parallel algorithm fails (deadline, injected fault,
  /// thrown exception, non-convergence), rerun with sequential Kruskal —
  /// slower but dependable — instead of returning the partial result.
  bool fallback_to_sequential = true;
};

struct AutoMstResult {
  MstResult result;
  /// Canonical registry name of the algorithm that produced `result`
  /// ("llp-prim", "llp-boruvka", ..., "kruskal" after a fallback, or
  /// "trivial" for the empty graph).
  std::string algorithm;
  /// True when the chosen parallel algorithm failed and sequential Kruskal
  /// produced the result instead; `fallback_reason` says why (e.g.
  /// "deadline_exceeded", "injected_fault", "exception: ...").
  bool fell_back = false;
  std::string fallback_reason;
};

/// Computes the MSF with the recommended algorithm.  Deadline and external
/// cancellation are read from `ctx`; a user cancel is honoured as a cancel
/// (partial result, no fallback).
[[nodiscard]] AutoMstResult minimum_spanning_forest(
    const CsrGraph& g, RunContext& ctx, const AutoMstOptions& options = {});

}  // namespace llpmst
