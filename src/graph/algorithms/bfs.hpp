// Breadth-first search over a CSR graph.  Used by classic Boruvka
// (Algorithm 3 identifies components by BFS), by the verifier, and by tests.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace llpmst {

struct BfsResult {
  /// Parent of each vertex in the BFS tree; kInvalidVertex if unreached
  /// (the source is its own parent).
  std::vector<VertexId> parent;
  /// Hop distance from the source; kInvalidVertex if unreached.
  std::vector<VertexId> depth;
  /// Vertices in visit order.
  std::vector<VertexId> order;
};

/// BFS from `source`.
[[nodiscard]] BfsResult bfs(const CsrGraph& g, VertexId source);

/// BFS restricted to a subset of edges: `edge_in_subgraph[e]` gates edge e.
/// This is exactly what classic Boruvka needs to find components of (V, T).
[[nodiscard]] BfsResult bfs_subgraph(const CsrGraph& g, VertexId source,
                                     const std::vector<bool>& edge_in_subgraph);

}  // namespace llpmst
