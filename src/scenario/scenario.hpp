// The named scenario registry: adversarial workloads as first-class,
// reproducible objects.
//
// A scenario bundles a graph generator configuration, an optional fault
// timeline / failpoint spec, an optional deadline, and the invariants the
// run is expected to uphold.  Everything is parameterized by one seed, so
// "scenario + seed" fully determines the input — the same contract the
// deterministic simulator extends to the schedule.  mst_tool exposes the
// registry through --list-scenarios/--scenario; the conformance test runs
// every scenario against the sequential Kruskal oracle.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/edge_list.hpp"
#include "mst/mst_result.hpp"

namespace llpmst {

class CsrGraph;

/// What a scenario's forest must look like (checked against the result and
/// the oracle).
struct ScenarioExpect {
  /// The generated graph is connected for every seed (so the result must be
  /// a spanning TREE: n-1 edges).
  bool connected = false;
  /// Lower bound on the number of components (disconnected scenarios; 1 for
  /// connected ones).
  std::size_t min_components = 1;
};

struct Scenario {
  const char* name;     // canonical kebab-case id (--scenario <name>)
  const char* family;   // grouping for the catalog table
  const char* summary;  // one line: what it stresses and why
  EdgeList (*make)(std::uint64_t seed);
  ScenarioExpect expect;
  /// Failpoint spec armed for the run ("" = none) — PR 2 grammar.
  const char* failpoints;
  /// Deadline armed on the RunContext in ms (0 = none).
  double deadline_ms;
};

/// All registered scenarios, presentation order (stable addresses).
[[nodiscard]] const std::vector<Scenario>& scenarios();

/// Lookup by canonical name; nullptr when unknown.
[[nodiscard]] const Scenario* find_scenario(std::string_view name);

/// "rmat-skew-mild | ... " — generated so help text cannot drift.
[[nodiscard]] std::string scenario_names(const char* separator = " | ");

/// Checks `result` (produced by any algorithm on the scenario's graph `g`)
/// against the scenario's expectations AND the Kruskal oracle: forest size,
/// total weight, bit-identical edge set for deterministic algorithms.
/// Returns "" when everything holds, else a one-line description of the
/// first violation.  `compare_edges` = false relaxes the check to total
/// weight only (for a future non-deterministic entry).
[[nodiscard]] std::string check_scenario_result(const Scenario& scenario,
                                                const CsrGraph& g,
                                                const MstResult& result,
                                                bool compare_edges = true);

}  // namespace llpmst
