// Repetition/timing harness for the figure benchmarks: runs a callable
// several times (after warmup), verifies the result against a reference on
// the first repetition, and reports median wall time.
#pragma once

#include <functional>
#include <string>

#include "mst/mst_result.hpp"
#include "support/stats.hpp"

namespace llpmst {

struct BenchOptions {
  int warmup = 1;
  int repetitions = 3;
  bool verify = true;  // cross-check the edge set against a reference MSF
};

struct BenchMeasurement {
  std::string name;
  Summary time_ms;        // across repetitions
  MstResult last_result;  // instrumentation from the last repetition
  bool verified = false;  // result matched the reference (when requested)
};

/// Times `run` (which must return the MSF of `g`).  When options.verify is
/// set, compares the edge set of the first repetition with `reference`
/// (dies loudly on mismatch — a benchmark of a wrong algorithm is worse
/// than no benchmark).
[[nodiscard]] BenchMeasurement measure_mst(
    const std::string& name, const CsrGraph& g, const MstResult& reference,
    const std::function<MstResult()>& run, const BenchOptions& options = {});

}  // namespace llpmst
