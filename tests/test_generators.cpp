#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/algorithms/connected_components.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/special.hpp"

namespace llpmst {
namespace {

// ---------------------------------------------------------------- rmat

TEST(Rmat, DeterministicForSeed) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 123;
  const EdgeList a = generate_rmat(p);
  const EdgeList b = generate_rmat(p);
  EXPECT_EQ(a.edges(), b.edges());
  p.seed = 124;
  const EdgeList c = generate_rmat(p);
  EXPECT_NE(a.edges(), c.edges());
}

TEST(Rmat, SizeAndNormalization) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;
  const EdgeList g = generate_rmat(p);
  EXPECT_EQ(g.num_vertices(), 1u << 12);
  EXPECT_TRUE(g.is_normalized());
  // Dedup removes some of the edge_factor * n generated tuples, but the
  // bulk should survive at this scale.
  EXPECT_GT(g.num_edges(), (1u << 12) * 8u);
  EXPECT_LE(g.num_edges(), (1u << 12) * 16u);
}

TEST(Rmat, SkewedDegreeDistribution) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 16;
  const EdgeList g = generate_rmat(p);
  std::vector<std::size_t> deg(g.num_vertices(), 0);
  for (const WeightedEdge& e : g.edges()) {
    ++deg[e.u];
    ++deg[e.v];
  }
  const std::size_t max_deg = *std::max_element(deg.begin(), deg.end());
  const double avg = 2.0 * g.num_edges() / g.num_vertices();
  // Kronecker graphs are heavy-tailed: the max degree dwarfs the average.
  EXPECT_GT(static_cast<double>(max_deg), 10.0 * avg);
}

TEST(Rmat, WeightsWithinBounds) {
  RmatParams p;
  p.scale = 10;
  p.max_weight = 100;
  const EdgeList g = generate_rmat(p);
  for (const WeightedEdge& e : g.edges()) {
    EXPECT_GE(e.w, 1u);
    EXPECT_LE(e.w, 100u);
  }
}

TEST(ConnectComponents, MakesGraphConnectedWithHeavyBridges) {
  // A deliberately fragmented graph.
  EdgeList list(9);
  list.add_edge(0, 1, 10);
  list.add_edge(3, 4, 20);
  list.add_edge(6, 7, 30);
  list.normalize();
  ASSERT_GT(connected_components(list).num_components, 1u);

  const std::size_t added = connect_components(list, 42);
  EXPECT_GT(added, 0u);
  EXPECT_TRUE(is_connected(list));
  // Bridges are heavier than every original edge.
  std::size_t heavy = 0;
  for (const WeightedEdge& e : list.edges()) {
    if (e.w > 30) ++heavy;
  }
  EXPECT_EQ(heavy, added);
}

TEST(ConnectComponents, NoOpOnConnectedGraph) {
  EdgeList list = make_path(10);
  EXPECT_EQ(connect_components(list), 0u);
}

// ---------------------------------------------------------------- road

TEST(Road, ConnectedAndDeterministic) {
  RoadParams p;
  p.width = 40;
  p.height = 30;
  p.seed = 7;
  const EdgeList a = generate_road_network(p);
  EXPECT_EQ(a.num_vertices(), 1200u);
  EXPECT_TRUE(a.is_normalized());
  EXPECT_TRUE(is_connected(a));
  const EdgeList b = generate_road_network(p);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Road, RoadLikeMorphology) {
  RoadParams p;
  p.width = 64;
  p.height = 64;
  const EdgeList g = generate_road_network(p);
  const double epv =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.num_vertices());
  // USA-road has m/n ~ 2.4; a grid road should land well under 3.
  EXPECT_GT(epv, 1.0);
  EXPECT_LT(epv, 3.0);
  // Max degree is bounded by the 8-neighbour stencil.
  std::vector<std::size_t> deg(g.num_vertices(), 0);
  for (const WeightedEdge& e : g.edges()) {
    ++deg[e.u];
    ++deg[e.v];
  }
  EXPECT_LE(*std::max_element(deg.begin(), deg.end()), 8u);
}

TEST(Road, SingleRowAndColumnGrids) {
  RoadParams p;
  p.width = 1;
  p.height = 20;
  EXPECT_TRUE(is_connected(generate_road_network(p)));
  p.width = 20;
  p.height = 1;
  EXPECT_TRUE(is_connected(generate_road_network(p)));
  p.width = 1;
  p.height = 1;
  const EdgeList single = generate_road_network(p);
  EXPECT_EQ(single.num_vertices(), 1u);
  EXPECT_EQ(single.num_edges(), 0u);
}

TEST(Road, AggressiveDroppingStillConnected) {
  RoadParams p;
  p.width = 50;
  p.height = 50;
  p.keep_street = 0.5;  // drop half of all streets
  EXPECT_TRUE(is_connected(generate_road_network(p)));
}

// ---------------------------------------------------------------- random

TEST(ErdosRenyi, DeterministicNormalizedAndSized) {
  ErdosRenyiParams p;
  p.num_vertices = 500;
  p.num_edges = 2000;
  const EdgeList a = generate_erdos_renyi(p);
  const EdgeList b = generate_erdos_renyi(p);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_TRUE(a.is_normalized());
  EXPECT_LE(a.num_edges(), 2000u);
  EXPECT_GT(a.num_edges(), 1800u);  // few collisions at this density
}

TEST(ErdosRenyi, TinyGraphs) {
  ErdosRenyiParams p;
  p.num_vertices = 1;
  p.num_edges = 10;
  EXPECT_EQ(generate_erdos_renyi(p).num_edges(), 0u);  // only self loops
  p.num_vertices = 2;
  const EdgeList two = generate_erdos_renyi(p);
  EXPECT_LE(two.num_edges(), 1u);
}

TEST(Geometric, LocalEdgesAndDeterminism) {
  GeometricParams p;
  p.num_vertices = 800;
  p.neighbors = 4;
  const EdgeList a = generate_geometric(p);
  EXPECT_TRUE(a.is_normalized());
  EXPECT_GE(a.num_edges(), 800u * 4 / 2 / 2);  // dedup halves at most ~half
  const EdgeList b = generate_geometric(p);
  EXPECT_EQ(a.edges(), b.edges());
}

// ---------------------------------------------------------------- special

TEST(Special, PathShape) {
  const EdgeList g = make_path(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Special, CycleShape) {
  const EdgeList g = make_cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  std::vector<std::size_t> deg(6, 0);
  for (const WeightedEdge& e : g.edges()) {
    ++deg[e.u];
    ++deg[e.v];
  }
  for (auto d : deg) EXPECT_EQ(d, 2u);
}

TEST(Special, StarShape) {
  const EdgeList g = make_star(7);
  EXPECT_EQ(g.num_edges(), 6u);
  std::size_t center_deg = 0;
  for (const WeightedEdge& e : g.edges()) center_deg += (e.u == 0);
  EXPECT_EQ(center_deg, 6u);
}

TEST(Special, CompleteShape) {
  const EdgeList g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Special, RandomTreeIsSpanningTree) {
  const EdgeList g = make_random_tree(100, 3);
  EXPECT_EQ(g.num_edges(), 99u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Special, ForestHasExpectedComponents) {
  const EdgeList g = make_forest(4, 25, 9);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 4u * 24u);
  EXPECT_EQ(connected_components(g).num_components, 4u);
}

TEST(Special, PaperFigure1Exact) {
  const EdgeList g = make_paper_figure1();
  EXPECT_EQ(g.num_vertices(), 5u);
  ASSERT_EQ(g.num_edges(), 7u);
  TotalWeight total = 0;
  for (const WeightedEdge& e : g.edges()) total += e.w;
  EXPECT_EQ(total, 41u);  // 5+4+3+7+9+11+2
}

}  // namespace
}  // namespace llpmst
