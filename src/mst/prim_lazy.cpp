#include "mst/prim_lazy.hpp"

#include "ds/lazy_heap.hpp"
#include "mst/prim_heaps.hpp"

namespace llpmst {

MstResult prim_lazy(const CsrGraph& g, VertexId root) {
  return prim_with_heap<LazyHeap<EdgePriority>>(g, root);
}

MstResult prim_lazy(const CsrGraph& g, RunContext& /*ctx*/) {
  return prim_lazy(g);
}

MstAlgorithm prim_lazy_algorithm() {
  return {"prim-lazy", "Prim (lazy heap)",
          "Prim with lazy inserts and stale pops (Section IV's variant)",
          {.parallel = false, .msf_capable = false, .deterministic = true,
           .cancellable = false},
          [](const CsrGraph& g, RunContext& ctx) { return prim_lazy(g, ctx); }};
}

}  // namespace llpmst
