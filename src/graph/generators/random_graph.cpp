#include "graph/generators/random_graph.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"
#include "support/random.hpp"

namespace llpmst {

EdgeList generate_erdos_renyi(const ErdosRenyiParams& params) {
  LLPMST_CHECK(params.num_vertices >= 1);
  LLPMST_CHECK(params.max_weight >= 1);
  const std::uint32_t n = params.num_vertices;

  EdgeList list(n);
  list.reserve(params.num_edges);
  Xoshiro256 rng(params.seed);
  if (n < 2) return list;

  for (std::uint64_t i = 0; i < params.num_edges; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    const auto w = static_cast<Weight>(rng.next_in(1, params.max_weight));
    list.add_edge(u, v, w);  // self loops & dups removed by normalize()
  }
  list.normalize();
  return list;
}

EdgeList generate_geometric(const GeometricParams& params) {
  LLPMST_CHECK(params.num_vertices >= 1);
  LLPMST_CHECK(params.neighbors >= 1);
  const std::uint32_t n = params.num_vertices;

  Xoshiro256 rng(params.seed);
  std::vector<double> xs(n), ys(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    xs[i] = rng.next_double();
    ys[i] = rng.next_double();
  }

  // Bucket grid sized so the expected occupancy per cell is ~2; k-nearest
  // search expands rings of cells until enough candidates are seen.
  const std::uint32_t side =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                     std::sqrt(static_cast<double>(n) / 2.0)));
  std::vector<std::vector<std::uint32_t>> cells(
      static_cast<std::size_t>(side) * side);
  const auto cell_of = [&](std::uint32_t i) {
    auto cx = static_cast<std::uint32_t>(xs[i] * side);
    auto cy = static_cast<std::uint32_t>(ys[i] * side);
    cx = std::min(cx, side - 1);
    cy = std::min(cy, side - 1);
    return cy * side + cx;
  };
  for (std::uint32_t i = 0; i < n; ++i) cells[cell_of(i)].push_back(i);

  EdgeList list(n);
  list.reserve(static_cast<std::size_t>(n) * params.neighbors);

  std::vector<std::pair<double, std::uint32_t>> candidates;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto cx = static_cast<std::int64_t>(
        std::min<std::uint32_t>(static_cast<std::uint32_t>(xs[i] * side),
                                side - 1));
    auto cy = static_cast<std::int64_t>(
        std::min<std::uint32_t>(static_cast<std::uint32_t>(ys[i] * side),
                                side - 1));
    candidates.clear();
    // Expand rings until we have comfortably more candidates than k (2x),
    // or the whole grid has been scanned.
    for (std::int64_t ring = 0; ring < side; ++ring) {
      const std::int64_t lo_x = cx - ring, hi_x = cx + ring;
      const std::int64_t lo_y = cy - ring, hi_y = cy + ring;
      for (std::int64_t y = lo_y; y <= hi_y; ++y) {
        if (y < 0 || y >= side) continue;
        for (std::int64_t x = lo_x; x <= hi_x; ++x) {
          if (x < 0 || x >= side) continue;
          const bool boundary =
              (x == lo_x || x == hi_x || y == lo_y || y == hi_y);
          if (!boundary) continue;  // inner cells were scanned earlier rings
          for (std::uint32_t j : cells[static_cast<std::size_t>(y) * side + x]) {
            if (j == i) continue;
            const double dx = xs[i] - xs[j], dy = ys[i] - ys[j];
            candidates.emplace_back(dx * dx + dy * dy, j);
          }
        }
      }
      if (candidates.size() >= 2 * params.neighbors && ring >= 1) break;
    }
    const std::size_t k =
        std::min<std::size_t>(params.neighbors, candidates.size());
    std::partial_sort(candidates.begin(), candidates.begin() + k,
                      candidates.end());
    for (std::size_t c = 0; c < k; ++c) {
      const auto j = candidates[c].second;
      const auto w =
          static_cast<Weight>(std::sqrt(candidates[c].first) * params.unit) + 1;
      list.add_edge(i, j, w);
    }
  }
  list.normalize();
  return list;
}

}  // namespace llpmst
