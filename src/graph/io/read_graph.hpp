// Unified graph-loading entry point: detects the on-disk format and returns
// Expected<EdgeList>, so every tool and service gets the same dispatch rules
// (and the same structured errors) instead of each reimplementing them.
//
// Detection sniffs the file's LEADING BYTES first — magic numbers are
// authoritative, text heuristics next, and the extension is only the
// tie-break for ambiguous text:
//
//   "LLPMSTB\0" magic   -> llpmstb CSR snapshot   (read_binary_csr)
//   "LLPM" magic        -> llpmst binary edge list (read_edge_list_binary)
//   'c'/'p sp' lines    -> DIMACS                  (read_dimacs)
//   '%' comment lines   -> METIS                   (read_metis)
//   ambiguous text      -> extension: .gr DIMACS, .metis/.graph METIS,
//                          .bin binary, else "u v w" text
//
// Passing an explicit format that contradicts an unambiguous magic is an
// kInvalidArgument naming the detected format — tools surface that as a
// usage error (exit 2) rather than a corrupt-input parse failure.
//
// Note read_graph always materializes an EdgeList (the parse path).  The
// zero-parse mmap mount of a `llpmstb` snapshot is the CSR-level entry
// point read_binary_csr() in graph/io/binary_csr.hpp.
#pragma once

#include <string>

#include "graph/edge_list.hpp"
#include "support/status.hpp"

namespace llpmst {

enum class GraphFormat { kAuto, kDimacs, kMetis, kBinary, kText };

/// "auto" | "dimacs" | "metis" | "binary" | "text" — for diagnostics and
/// CLI flag parsing.
[[nodiscard]] const char* graph_format_name(GraphFormat f);

/// Maps a flag string to a format ("auto"/"dimacs"/"metis"/"binary"/"text").
/// Returns false on an unknown name.
[[nodiscard]] bool parse_graph_format(const std::string& name,
                                      GraphFormat& out);

/// Resolves the format read_graph would use for this path: sniffs leading
/// bytes, falls back to the extension for ambiguous text.  Never returns
/// kAuto.  An unreadable file resolves by extension alone.
[[nodiscard]] GraphFormat detect_graph_format(const std::string& path);

/// Loads a graph file.  On failure the Status carries the reader's verdict:
/// kIoError (open/size failures), kCorruptInput (bad bytes),
/// kInvalidArgument (explicit `format` contradicts the file's magic), or
/// the injected-fault codes when a chaos failpoint is armed.
[[nodiscard]] Expected<EdgeList> read_graph(
    const std::string& path, GraphFormat format = GraphFormat::kAuto);

}  // namespace llpmst
