// Compressed sparse row (CSR) graph: the traversal representation used by
// Prim, LLP-Prim, and round 0 of Boruvka.
//
// Built from a *normalized* EdgeList (see EdgeList::normalize).  The i-th
// edge of that list is undirected edge id i; the CSR stores both directed
// arcs of every undirected edge.  Arcs carry the packed priority of their
// undirected edge (see graph/types.hpp), so the arc's weight and edge id are
// both recoverable from one 64-bit load, and per-vertex minimum-weight-edge
// (MWE) selection is a plain min over the arc priorities.
//
// The original edge list is retained: edge-id -> (u, v, w) lookups are O(1)
// and the edge-centric passes of Boruvka iterate it directly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "parallel/executor.hpp"
#include "support/assert.hpp"

namespace llpmst {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from a normalized edge list.  If `pool` is non-null the offsets
  /// and arcs are computed with parallel scans; the result is identical
  /// either way.  LLPMST_CHECKs that the list is normalized.
  static CsrGraph build(const EdgeList& list, Executor* pool = nullptr);

  [[nodiscard]] std::size_t num_vertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] std::size_t num_arcs() const { return targets_.size(); }

  /// Degree of v (number of incident undirected edges).
  [[nodiscard]] std::size_t degree(VertexId v) const {
    LLPMST_ASSERT(v < num_vertices());
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbor vertex ids of v, parallel to arc_priorities(v).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    LLPMST_ASSERT(v < num_vertices());
    return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Packed priorities of the arcs out of v, parallel to neighbors(v).
  [[nodiscard]] std::span<const EdgePriority> arc_priorities(VertexId v) const {
    LLPMST_ASSERT(v < num_vertices());
    return {priorities_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// The undirected edges, indexed by edge id.
  [[nodiscard]] const std::vector<WeightedEdge>& edges() const {
    return edges_;
  }

  [[nodiscard]] const WeightedEdge& edge(EdgeId e) const {
    LLPMST_ASSERT(e < edges_.size());
    return edges_[e];
  }

  /// Packed priority of undirected edge e.
  [[nodiscard]] EdgePriority edge_priority(EdgeId e) const {
    LLPMST_ASSERT(e < edges_.size());
    return make_priority(edges_[e].w, e);
  }

  /// Priority of v's minimum-weight incident edge, or kInfinitePriority for
  /// an isolated vertex.  Precomputed at build time — the paper notes the
  /// MWE set "can be computed when the graph is input".
  [[nodiscard]] EdgePriority min_incident_priority(VertexId v) const {
    LLPMST_ASSERT(v < num_vertices());
    return mwe_[v];
  }

  /// Per-arc MWE flags, parallel to neighbors(v)/arc_priorities(v): flag i
  /// is 1 iff that arc's edge is the minimum-weight incident edge of EITHER
  /// endpoint (i.e. it is in the paper's MWE set and triggers LLP-Prim's
  /// early fixing).  Stored alongside the arc stream so the hot relaxation
  /// loop reads it sequentially instead of chasing mwe_[target] randomly.
  [[nodiscard]] std::span<const std::uint8_t> arc_mwe_flags(VertexId v) const {
    LLPMST_ASSERT(v < num_vertices());
    return {mwe_flags_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Sum of all edge weights (useful as an upper bound in tests).
  [[nodiscard]] TotalWeight total_weight() const;

 private:
  std::vector<std::size_t> offsets_;       // n+1 row offsets into arcs
  std::vector<VertexId> targets_;          // 2m arc targets
  std::vector<EdgePriority> priorities_;   // 2m packed arc priorities
  std::vector<EdgePriority> mwe_;          // n per-vertex min arc priority
  std::vector<std::uint8_t> mwe_flags_;    // 2m per-arc "edge is an MWE" flags
  std::vector<WeightedEdge> edges_;        // m undirected edges by id
};

}  // namespace llpmst
