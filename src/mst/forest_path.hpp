// Rooted-forest path queries over a set of tree edges: the machinery behind
// (a) the MSF verifier's cycle-property certificate and (b) the F-light
// edge filter of the KKT randomized MSF algorithm.
//
// Queries walk ancestor chains (O(path length) per query).  That is the
// simple, auditable choice: the O(1)-per-query verifiers (King/Komlós) trade
// a large constant and much more code for asymptotics that never matter at
// the scales this library targets; DESIGN.md records the tradeoff.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace llpmst {

class ForestPathIndex {
 public:
  /// Builds the index for the forest formed by `tree_edges` (edge ids into
  /// g).  O(n + |tree|).
  ForestPathIndex(const CsrGraph& g, const std::vector<EdgeId>& tree_edges);

  /// Builds from explicit endpoint/priority triples over `num_vertices`
  /// vertices — used when the forest lives in a contracted space where no
  /// CsrGraph exists.
  ForestPathIndex(std::size_t num_vertices,
                  const std::vector<WeightedEdge>& edges,
                  const std::vector<EdgePriority>& priorities);

  /// True iff u and v are in the same tree.
  [[nodiscard]] bool connected(VertexId u, VertexId v) const {
    return root_[u] == root_[v];
  }

  /// Maximum edge priority on the tree path u..v.  Precondition:
  /// connected(u, v); returns 0 for u == v.
  [[nodiscard]] EdgePriority max_on_path(VertexId u, VertexId v) const;

  /// The KKT "F-light" test: an edge (u, v, p) is HEAVY iff its endpoints
  /// are connected in the forest and p is strictly larger than the heaviest
  /// edge on the u..v path; everything else — including the forest's own
  /// edges, whose priority equals their path max — is light.  Only F-light
  /// edges can be in the MSF of the full graph.
  [[nodiscard]] bool is_light(VertexId u, VertexId v, EdgePriority p) const {
    if (!connected(u, v)) return true;
    return !(max_on_path(u, v) < p);
  }

 private:
  void build(std::size_t n, const std::vector<WeightedEdge>& edges,
             const std::vector<EdgePriority>& priorities);

  std::vector<VertexId> parent_;        // parent vertex (roots: self)
  std::vector<EdgePriority> parent_prio_;
  std::vector<std::uint32_t> depth_;
  std::vector<VertexId> root_;          // tree representative
};

}  // namespace llpmst
