// Storage-backend equivalence: the acceptance gate for the storage refactor.
//
// Every registry algorithm must produce a bit-identical forest (edge ids,
// total weight, tree count) whether the graph lives in owned heap vectors
// (CsrGraph::build) or in a read-only mmap over a packed llpmstb snapshot
// (write_binary_csr + read_binary_csr).  The workload matrix mirrors
// test_registry_conformance: sparse, dense, forest, empty, single-vertex —
// same generators, same seeds — so a divergence here isolates the storage
// seam, not the algorithm.
//
// Also pins the storage plumbing itself: section equality across backends,
// handle-copy semantics, and the connectivity cache keying on storage
// identity rather than handle address.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/run_context.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/special.hpp"
#include "graph/io/binary_csr.hpp"
#include "graph/storage.hpp"
#include "mst/kruskal.hpp"
#include "mst/registry.hpp"
#include "mst/verifier.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

struct BackendCase {
  const char* name;
  bool connected;  // tree-only algorithms run only when true
  CsrGraph heap;
  CsrGraph mmap;
};

class StorageEquivalence : public testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("llpmst_storage_eq_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Heap-built and packed+mmapped copies of one edge list.  The mmap copy
  /// round-trips through an llpmstb file with full payload verification.
  BackendCase both(const char* name, bool connected, const EdgeList& list) {
    BackendCase c{name, connected, csr(list), {}};
    const std::string file = (dir_ / (std::string(name) + ".llpmstb")).string();
    EXPECT_TRUE(write_binary_csr(file, c.heap).ok()) << name;
    BinaryCsrOptions opts;
    opts.verify_payload = true;
    Expected<CsrGraph> mounted = read_binary_csr(file, opts);
    EXPECT_TRUE(mounted.ok()) << name << ": " << mounted.status().to_string();
    c.mmap = std::move(*mounted);
    return c;
  }

  std::vector<BackendCase> cases() {
    std::vector<BackendCase> out;
    ErdosRenyiParams sparse;
    sparse.num_vertices = 800;
    sparse.num_edges = 1800;
    sparse.seed = 21;
    EdgeList sparse_list = generate_erdos_renyi(sparse);
    connect_components(sparse_list);
    out.push_back(both("sparse", true, sparse_list));

    ErdosRenyiParams dense;
    dense.num_vertices = 300;
    dense.num_edges = 9000;
    dense.seed = 22;
    EdgeList dense_list = generate_erdos_renyi(dense);
    connect_components(dense_list);
    out.push_back(both("dense", true, dense_list));

    out.push_back(both("forest", false, make_forest(4, 60, 23)));
    out.push_back(both("empty", false, EdgeList(0)));
    out.push_back(both("single-vertex", true, EdgeList(1)));
    return out;
  }

  std::filesystem::path dir_;
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
};
INSTANTIATE_TEST_SUITE_P(Threads, StorageEquivalence, testing::Values(1, 4));

TEST_P(StorageEquivalence, SectionsAreIdenticalAcrossBackends) {
  for (const BackendCase& c : cases()) {
    SCOPED_TRACE(c.name);
    EXPECT_STREQ(c.heap.backend_name(), "heap");
    EXPECT_STREQ(c.mmap.backend_name(), "mmap");
    ASSERT_EQ(c.heap.num_vertices(), c.mmap.num_vertices());
    ASSERT_EQ(c.heap.num_edges(), c.mmap.num_edges());
    ASSERT_EQ(c.heap.num_arcs(), c.mmap.num_arcs());
    const CsrSections& a = c.heap.storage()->sections();
    const CsrSections& b = c.mmap.storage()->sections();
    EXPECT_TRUE(std::equal(a.offsets.begin(), a.offsets.end(),
                           b.offsets.begin(), b.offsets.end()));
    EXPECT_TRUE(std::equal(a.targets.begin(), a.targets.end(),
                           b.targets.begin(), b.targets.end()));
    EXPECT_TRUE(std::equal(a.priorities.begin(), a.priorities.end(),
                           b.priorities.begin(), b.priorities.end()));
    EXPECT_TRUE(std::equal(a.mwe.begin(), a.mwe.end(), b.mwe.begin(),
                           b.mwe.end()));
    EXPECT_TRUE(std::equal(a.mwe_flags.begin(), a.mwe_flags.end(),
                           b.mwe_flags.begin(), b.mwe_flags.end()));
    EXPECT_EQ(c.heap.total_weight(), c.mmap.total_weight());
  }
}

TEST_P(StorageEquivalence, EveryAlgorithmIsBitIdenticalAcrossBackends) {
  RunContext ctx(pool_);
  for (const BackendCase& c : cases()) {
    SCOPED_TRACE(c.name);
    const MstResult reference = kruskal(c.heap);
    for (const MstAlgorithm& algo : mst_algorithms()) {
      if (!c.connected && !algo.caps.msf_capable) continue;  // tree-only
      SCOPED_TRACE(algo.name);
      const MstResult on_heap = algo.run(c.heap, ctx);
      const MstResult on_mmap = algo.run(c.mmap, ctx);
      EXPECT_EQ(on_heap.edges, on_mmap.edges);
      EXPECT_EQ(on_heap.total_weight, on_mmap.total_weight);
      EXPECT_EQ(on_heap.num_trees, on_mmap.num_trees);
      // Both sides must also be the (unique) forest, not merely agree.
      EXPECT_EQ(on_mmap.edges, reference.edges);
      const VerifyResult v = verify_msf(c.mmap, on_mmap, ctx);
      EXPECT_TRUE(v.ok) << v.error;
    }
  }
}

TEST_P(StorageEquivalence, MmapStorageReportsMappingStats) {
  for (const BackendCase& c : cases()) {
    SCOPED_TRACE(c.name);
    const GraphStorage* heap = c.heap.storage();
    const GraphStorage* mapped = c.mmap.storage();
    EXPECT_EQ(heap->mapped_bytes(), 0u);
    // Even an empty snapshot maps its header+padding.
    EXPECT_GT(mapped->mapped_bytes(), 0u);
    // The estimate can lag the kernel's accounting but never exceeds the
    // mapping.
    EXPECT_LE(mapped->resident_bytes_estimate(), mapped->mapped_bytes());
  }
}

TEST(StorageIdentity, HandleCopiesShareStorageAndConnectivityCache) {
  ErdosRenyiParams p;
  p.num_vertices = 120;
  p.num_edges = 300;
  p.seed = 7;
  const CsrGraph g = csr(generate_erdos_renyi(p));
  const CsrGraph copy = g;  // cheap handle copy, same storage
  EXPECT_EQ(g.storage(), copy.storage());

  RunContext ctx;
  const std::size_t n = ctx.num_components(g);
  // The cache keys on storage identity, so the copy hits without recompute.
  EXPECT_TRUE(ctx.components_cached(copy));
  EXPECT_EQ(ctx.num_components(copy), n);

  // A different build of the SAME edge list is a different graph identity.
  const CsrGraph rebuilt = csr(generate_erdos_renyi(p));
  EXPECT_FALSE(ctx.components_cached(rebuilt));
  EXPECT_EQ(ctx.num_components(rebuilt), n);
}

TEST(StorageIdentity, DefaultConstructedGraphHasNoBackend) {
  const CsrGraph g;
  EXPECT_EQ(g.storage(), nullptr);
  EXPECT_STREQ(g.backend_name(), "none");
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  RunContext ctx;
  // Null-storage graphs still answer (0 components) and cache safely.
  EXPECT_FALSE(ctx.components_cached(g));
  EXPECT_EQ(ctx.num_components(g), 0u);
  EXPECT_TRUE(ctx.components_cached(g));
}

TEST(StorageIdentity, SnapshotOutlivesTheFileName) {
  // The mapping, not the path, owns the bytes: renaming/unlinking the file
  // after mount must not disturb reads (POSIX keeps mapped pages alive).
  const auto dir = std::filesystem::temp_directory_path() /
                   ("llpmst_storage_unlink_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  ErdosRenyiParams p;
  p.num_vertices = 200;
  p.num_edges = 600;
  p.seed = 9;
  const CsrGraph g = csr(generate_erdos_renyi(p));
  const std::string file = (dir / "g.llpmstb").string();
  ASSERT_TRUE(write_binary_csr(file, g).ok());
  Expected<CsrGraph> mounted = read_binary_csr(file);
  ASSERT_TRUE(mounted.ok()) << mounted.status().to_string();
  std::filesystem::remove_all(dir);
  EXPECT_EQ(mounted->total_weight(), g.total_weight());
  EXPECT_EQ(kruskal(*mounted).edges, kruskal(g).edges);
}

}  // namespace
}  // namespace llpmst
