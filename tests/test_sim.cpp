// Deterministic schedule simulator suite.
//
// The contract under test is the PR's acceptance criterion: the same
// (scenario, seed) produces a bit-identical schedule trace and an identical
// forest on every run, and replaying a recorded trace reproduces the
// schedule exactly.  The determinism tests deliberately do NOT depend on
// the failpoint build flavour — CI runs this binary with failpoints both
// compiled in and compiled out; only the timeline/fault tests skip when
// they are out.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/run_context.hpp"
#include "graph/csr_graph.hpp"
#include "llp/llp_boruvka.hpp"
#include "mst/auto.hpp"
#include "mst/kruskal.hpp"
#include "scenario/scenario.hpp"
#include "sim/schedule_trace.hpp"
#include "sim/sim_executor.hpp"
#include "sim/timeline.hpp"
#include "support/cancel.hpp"
#include "support/failpoint.hpp"
#include "support/virtual_time.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using sim::ScheduleTrace;
using sim::SimExecutor;
using test::csr;

CsrGraph scenario_graph(const char* name, std::uint64_t seed = 1) {
  const Scenario* s = find_scenario(name);
  EXPECT_NE(s, nullptr) << name;
  return csr(s->make(seed));
}

/// One simulated llp-boruvka run: returns (trace, result).
struct SimRun {
  ScheduleTrace trace;
  MstResult result;
  std::uint64_t decisions = 0;
  bool diverged = false;
};

SimRun run_sim(const CsrGraph& g, const SimExecutor::Options& options) {
  SimExecutor exec(options);
  EXPECT_TRUE(exec.timeline_error().empty()) << exec.timeline_error();
  RunContext ctx;
  ctx.attach_executor(&exec);
  SimRun out;
  out.result = llp_boruvka(g, ctx);
  out.trace = exec.trace();
  out.decisions = exec.decisions();
  out.diverged = exec.replay_diverged();
  return out;
}

class SimDeterminism : public testing::Test {
 protected:
  void SetUp() override {
    if (fail::kCompiledIn) fail::disarm_all();
  }
  void TearDown() override {
    if (fail::kCompiledIn) fail::disarm_all();
  }
};

// ------------------------------------------------------------ determinism

TEST_F(SimDeterminism, ThreeConsecutiveRunsAreBitIdentical) {
  const CsrGraph g = scenario_graph("geo-road-hybrid", 5);
  const MstResult reference = kruskal(g);

  SimExecutor::Options o;
  o.seed = 42;
  o.workers = 4;
  const SimRun first = run_sim(g, o);
  ASSERT_GT(first.decisions, 0u);
  ASSERT_EQ(first.result.edges, reference.edges);
  ASSERT_EQ(first.result.total_weight, reference.total_weight);

  for (int rep = 0; rep < 2; ++rep) {
    const SimRun again = run_sim(g, o);
    ASSERT_EQ(again.trace, first.trace) << "run " << rep + 2;
    ASSERT_EQ(again.trace.encode(), first.trace.encode());
    ASSERT_EQ(again.result.edges, first.result.edges);
    ASSERT_EQ(again.result.total_weight, first.result.total_weight);
  }
}

TEST_F(SimDeterminism, DifferentSeedsExploreDifferentSchedules) {
  const CsrGraph g = scenario_graph("road-baseline", 3);
  SimExecutor::Options a;
  a.seed = 1;
  a.workers = 4;
  SimExecutor::Options b = a;
  b.seed = 2;
  const SimRun ra = run_sim(g, a);
  const SimRun rb = run_sim(g, b);
  // Schedules differ; the forest must not.
  EXPECT_NE(ra.trace.picks, rb.trace.picks);
  EXPECT_EQ(ra.result.edges, rb.result.edges);
  EXPECT_EQ(ra.result.edges, kruskal(g).edges);
}

TEST_F(SimDeterminism, ReplayReproducesTheScheduleExactly) {
  const CsrGraph g = scenario_graph("near-duplicate-weights", 7);
  SimExecutor::Options record;
  record.seed = 99;
  record.workers = 3;
  const SimRun recorded = run_sim(g, record);

  SimExecutor::Options replay;
  replay.replay = &recorded.trace;
  const SimRun replayed = run_sim(g, replay);
  EXPECT_FALSE(replayed.diverged);
  EXPECT_EQ(replayed.trace, recorded.trace);
  EXPECT_EQ(replayed.result.edges, recorded.result.edges);
  EXPECT_EQ(replayed.result.total_weight, recorded.result.total_weight);
}

TEST_F(SimDeterminism, TruncatedReplayFillsDeterministically) {
  // Past the end of a (minimized) prefix the scheduler falls back to
  // round-robin; that continuation must itself be deterministic.
  const CsrGraph g = scenario_graph("road-baseline", 2);
  SimExecutor::Options record;
  record.seed = 5;
  record.workers = 4;
  const SimRun recorded = run_sim(g, record);
  ASSERT_GT(recorded.trace.picks.size(), 10u);

  ScheduleTrace prefix = recorded.trace;
  prefix.picks.resize(prefix.picks.size() / 2);

  SimExecutor::Options replay;
  replay.replay = &prefix;
  const SimRun a = run_sim(g, replay);
  const SimRun b = run_sim(g, replay);
  EXPECT_FALSE(a.diverged);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.result.edges, b.result.edges);
  EXPECT_EQ(a.result.edges, kruskal(g).edges);
}

TEST_F(SimDeterminism, SingleWorkerSimulationStillTerminates) {
  const CsrGraph g = scenario_graph("forest-dust", 1);
  SimExecutor::Options o;
  o.seed = 11;
  o.workers = 1;
  const SimRun r = run_sim(g, o);
  EXPECT_EQ(r.result.edges, kruskal(g).edges);
}

// --------------------------------------------------------- trace encoding

TEST(ScheduleTraceTest, EncodeDecodeRoundTrip) {
  ScheduleTrace t;
  t.seed = 0xdeadbeefULL;
  t.workers = 5;
  t.picks = {0, 0, 0, 3, 2, 2, 4, 1, 1, 1, 1, 0};
  ScheduleTrace back;
  ASSERT_TRUE(back.decode(t.encode())) << t.encode();
  EXPECT_EQ(back, t);
}

TEST(ScheduleTraceTest, DecodeRejectsMalformedTokens) {
  ScheduleTrace t;
  EXPECT_FALSE(t.decode(""));
  EXPECT_FALSE(t.decode("nonsense"));
  EXPECT_FALSE(t.decode("llpsim1:12"));                 // truncated
  EXPECT_FALSE(t.decode("llpsim2:1:4:0x1"));            // wrong version
  EXPECT_FALSE(t.decode("llpsim1:1:0:0x1"));            // zero workers
  EXPECT_FALSE(t.decode("llpsim1:1:4:0x1.zz"));         // bad run
  EXPECT_FALSE(t.decode("llpsim1:1:4:9x1"));            // pick >= workers
  // A failed decode must leave the object unchanged.
  ScheduleTrace keep;
  keep.seed = 7;
  keep.workers = 2;
  keep.picks = {1, 0};
  ScheduleTrace probe = keep;
  EXPECT_FALSE(probe.decode("llpsim1:bad"));
  EXPECT_EQ(probe, keep);
}

TEST(ScheduleTraceTest, MinimizePrefixFindsTheShortestFailingPrefix) {
  ScheduleTrace failing;
  failing.seed = 1;
  failing.workers = 2;
  failing.picks.assign(100, 0);
  // The "bug" needs at least 37 recorded picks to manifest.
  const auto still_fails = [](const ScheduleTrace& t) {
    return t.picks.size() >= 37;
  };
  const ScheduleTrace min = sim::minimize_prefix(failing, still_fails);
  EXPECT_EQ(min.picks.size(), 37u);
  EXPECT_EQ(min.seed, failing.seed);
  EXPECT_EQ(min.workers, failing.workers);
}

TEST(ScheduleTraceTest, MinimizeKeepsScheduleIndependentFailuresEmpty) {
  ScheduleTrace failing;
  failing.seed = 1;
  failing.workers = 2;
  failing.picks.assign(50, 1);
  const ScheduleTrace min =
      sim::minimize_prefix(failing, [](const ScheduleTrace&) { return true; });
  EXPECT_TRUE(min.picks.empty());
}

// ---------------------------------------------- virtual clock & deadlines

TEST(VirtualClockTest, CancelTokenSeesAnAlreadyExpiredDeadline) {
  SimExecutor::Options o;
  o.workers = 2;
  SimExecutor exec(o);
  CancelToken token;
  token.set_deadline_after_ms(5);
  EXPECT_FALSE(token.cancelled());
  exec.clock().advance_ns(4'999'999);
  EXPECT_FALSE(token.cancelled());
  exec.clock().advance_ns(1);
  EXPECT_TRUE(token.cancelled());
  // Once expired under virtual time it stays expired — the clock only
  // moves forward.
  EXPECT_TRUE(token.cancelled());
}

TEST(VirtualClockTest, ZeroMsDeadlineExpiresImmediately) {
  SimExecutor::Options o;
  o.workers = 2;
  SimExecutor exec(o);
  CancelToken zero;
  zero.set_deadline_after_ms(0);
  EXPECT_TRUE(zero.cancelled());
  CancelToken negative;
  negative.set_deadline_after_ms(-3);  // clamped to "now"
  EXPECT_TRUE(negative.cancelled());
}

TEST(VirtualClockTest, DeadlineExpiryIsScheduleDeterministic) {
  // The virtual clock advances step_ns per decision, so a deadline armed
  // through the RunContext expires at the exact same decision every run —
  // partial results become reproducible instead of racy.
  const CsrGraph g = scenario_graph("road-baseline", 4);
  const auto run_with_deadline = [&] {
    SimExecutor::Options o;
    o.seed = 21;
    o.workers = 4;
    o.step_ns = 50'000;  // 0.05ms per decision: a 2ms budget = 40 decisions
    SimExecutor exec(o);
    RunContext ctx;
    ctx.attach_executor(&exec);
    ctx.set_deadline_ms(2.0);
    SimRun out;
    out.result = llp_boruvka(g, ctx);
    out.trace = exec.trace();
    out.decisions = exec.decisions();
    return out;
  };
  const SimRun a = run_with_deadline();
  const SimRun b = run_with_deadline();
  EXPECT_EQ(a.result.stats.outcome, RunOutcome::kDeadlineExceeded);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.result.edges, b.result.edges);
  EXPECT_EQ(a.result.stats.outcome, b.result.stats.outcome);
}

TEST(VirtualClockTest, WatchdogWithZeroTimeoutCancelsPromptly) {
  // The watchdog deliberately runs on REAL time even under a virtual clock
  // (a wedged simulation never advances virtual time), so a zero timeout
  // must cancel without any virtual-clock help.
  CancelToken token;
  Watchdog dog(token, 0);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (!token.cancelled() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  dog.disarm();
  EXPECT_TRUE(token.cancelled());
}

// ------------------------------------------------------ scripted timelines

// @step triggers, cancel/advance actions, and parse errors work in BOTH
// failpoint flavours (no failpoint machinery involved); only the tests that
// arm or count failpoints need the instrumented build.
class SimTimeline : public testing::Test {
 protected:
  void SetUp() override {
    if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
    fail::disarm_all();
  }
  void TearDown() override {
    if (fail::kCompiledIn) fail::disarm_all();
  }
};

TEST(SimTimelinePortable, AtStepCancelStopsTheRunDeterministically) {
  const CsrGraph g = scenario_graph("road-baseline", 6);
  const auto run_cancelled = [&] {
    SimExecutor::Options o;
    o.seed = 8;
    o.workers = 4;
    o.timeline = "@60: cancel";
    SimExecutor exec(o);
    EXPECT_TRUE(exec.timeline_error().empty()) << exec.timeline_error();
    CancelToken token;
    exec.bind_cancel(&token);
    RunContext ctx;
    ctx.attach_executor(&exec);
    ctx.set_cancel(&token);
    SimRun out;
    out.result = llp_boruvka(g, ctx);
    out.trace = exec.trace();
    return out;
  };
  const SimRun a = run_cancelled();
  const SimRun b = run_cancelled();
  EXPECT_EQ(a.result.stats.outcome, RunOutcome::kCancelled);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.result.edges, b.result.edges);
}

TEST_F(SimTimeline, OnHitArmInjectsAFaultAtTheKthVisit) {
  const CsrGraph g = scenario_graph("road-baseline", 6);
  SimExecutor::Options o;
  o.seed = 13;
  o.workers = 4;
  // The 2nd boruvka/contract hit arms a one-shot structured fault; the run
  // must stop with kInjectedFault on a LATER round (the arm takes effect
  // from the next visit).
  o.timeline = "hit(boruvka/contract:2): arm(boruvka/contract=1*return)";
  const SimRun r = run_sim(g, o);
  EXPECT_EQ(r.result.stats.outcome, RunOutcome::kInjectedFault);
}

TEST(SimTimelinePortable, MalformedTimelineIsReportedNotIgnored) {
  SimExecutor::Options o;
  o.workers = 2;
  o.timeline = "@notanumber: cancel";
  SimExecutor exec(o);
  EXPECT_FALSE(exec.timeline_error().empty());
}

TEST_F(SimTimeline, UserCancelDuringAutoFallbackStopsTheSequentialScan) {
  // The mst::auto fallback runs kruskal_cancellable on the USER token only
  // (an expired deadline must not kill its own recovery).  Here the user
  // cancel lands MID-fallback, scripted on the k-th kruskal/scan stride:
  // the fallback must stop with a partial forest, not run to completion.
  const CsrGraph g = scenario_graph("geo-road-hybrid", 9);
  const MstResult reference = kruskal(g);

  SimExecutor::Options o;
  o.seed = 3;
  o.workers = 4;
  o.timeline = "hit(kruskal/scan:2): cancel";
  SimExecutor exec(o);
  ASSERT_TRUE(exec.timeline_error().empty()) << exec.timeline_error();
  CancelToken user;
  exec.bind_cancel(&user);
  RunContext ctx;
  ctx.attach_executor(&exec);
  ctx.set_cancel(&user);
  // Break the parallel pick so auto must fall back.
  ASSERT_TRUE(fail::arm("llp_prim/handoff", "return"));
  ASSERT_TRUE(fail::arm("boruvka/contract", "return"));

  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  EXPECT_TRUE(r.fell_back);
  EXPECT_EQ(r.algorithm, "kruskal");
  EXPECT_EQ(r.result.stats.outcome, RunOutcome::kCancelled);
  EXPECT_LT(r.result.edges.size(), reference.edges.size());
}

TEST_F(SimTimeline, ExpiredDeadlineFallbackStillCompletesUnderSim) {
  // Counterpart to the user-cancel case: when only the DEADLINE expires,
  // the fallback ignores it and must deliver the complete exact forest
  // even though virtual time never rewinds.
  const CsrGraph g = scenario_graph("road-baseline", 10);
  const MstResult reference = kruskal(g);

  SimExecutor::Options o;
  o.seed = 4;
  o.workers = 4;
  o.step_ns = 1'000'000;  // 1ms per decision: the 1ms budget dies instantly
  SimExecutor exec(o);
  RunContext ctx;
  ctx.attach_executor(&exec);
  ctx.set_deadline_ms(1.0);

  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  EXPECT_TRUE(r.fell_back);
  EXPECT_EQ(r.fallback_reason, "deadline_exceeded");
  EXPECT_EQ(r.result.edges, reference.edges);
  EXPECT_EQ(r.result.stats.outcome, RunOutcome::kOk);
}

}  // namespace
}  // namespace llpmst
