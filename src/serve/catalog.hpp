// The graph catalog: named, immutable, refcounted CSR snapshots.
//
// llpmstd serves many queries over few graphs, so the expensive part —
// parse/generate an edge list, build the CSR, count components — happens
// once per `load`, and every query after that shares the snapshot through
// a shared_ptr.  The memory-footprint contract (after arXiv:2302.12199's
// snapshot-shared execution model) is:
//
//   * a snapshot is IMMUTABLE after load: queries only ever read it, so
//     sharing needs no locks beyond the catalog map's own mutex;
//   * `unload` removes the NAME, not the data — in-flight queries holding
//     the shared_ptr finish against the old snapshot, and the memory is
//     reclaimed when the last holder drops it.  A load over an existing
//     name is rejected (unload first), so a name never silently changes
//     meaning between two queries of one client script;
//   * the component count is computed at load time, which is what lets
//     admission reject a tree-only algorithm on a forest BEFORE queueing
//     (and lets every query seed its RunContext's connectivity cache
//     instead of recomputing a union-find per request).
//
// Sources accepted by load():
//   scenario:NAME  — the PR-7 scenario registry (seed overrides supported)
//   road:SIDE      — SIDExSIDE road network (connected)
//   rmat:SCALE     — graph500 RMAT, 2^SCALE vertices (disconnected)
//   er:VERTICES    — Erdos-Renyi G(n, 4n)
//   file:PATH      — read_graph() dispatch (format sniffed from bytes)
//   binfile:PATH   — llpmstb CSR snapshot MOUNTED via mmap: no parse, no
//                    CSR rebuild, arc data paged in on demand — this is how
//                    llpmstd serves graphs larger than resident RAM
//   anything else  — treated as a file path
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "support/status.hpp"

namespace llpmst::serve {

/// One immutable loaded graph.  Everything a query needs is computed at
/// load time; after construction the snapshot is never written again.
struct GraphSnapshot {
  std::string name;
  std::string source;
  std::uint64_t seed = 0;
  CsrGraph graph;
  std::size_t components = 0;
  // -- Load stats (control-op responses and /stats) -----------------------
  /// Storage backend the snapshot lives on: "heap" (built) or "mmap"
  /// (binfile: mount).
  const char* backend = "heap";
  /// Bytes backed by a file mapping (0 for heap snapshots).
  std::size_t bytes_mapped = 0;
  /// Wall time of the load: parse+build for heap sources, open+map+validate
  /// for binfile mounts.
  double load_ms = 0;
};

using SnapshotPtr = std::shared_ptr<const GraphSnapshot>;

class GraphCatalog {
 public:
  /// Parses `source`, builds the CSR, counts components, and registers the
  /// snapshot under `name`.  Errors: kInvalidArgument for a bad name /
  /// duplicate name / unknown scenario / malformed source, and whatever
  /// read_graph() reports for file sources.  `seed` parameterizes
  /// generator-backed sources and is ignored for files.
  Expected<SnapshotPtr> load(const std::string& name,
                             const std::string& source, std::uint64_t seed);

  /// The snapshot registered under `name`; nullptr when absent.  The
  /// returned pointer keeps the snapshot alive past a later unload().
  [[nodiscard]] SnapshotPtr get(const std::string& name) const;

  /// Unregisters `name`.  In-flight holders keep their snapshot; returns
  /// the number of OTHER outstanding references at removal time (0 = memory
  /// reclaimed now), or an error when the name is unknown.
  Expected<std::size_t> unload(const std::string& name);

  struct Entry {
    std::string name;
    std::string source;
    std::uint64_t seed;
    std::size_t vertices;
    std::size_t edges;
    std::size_t components;
    /// Snapshot references held outside the catalog right now (in-flight
    /// or queued queries, plus unloaded-but-held ghosts are NOT counted —
    /// those no longer have a name to list).
    std::size_t pinned;
    /// Storage backend ("heap" | "mmap") and its load stats.
    const char* backend;
    std::size_t bytes_mapped;
    double load_ms;
    /// Bytes currently resident in RAM — exact for heap snapshots, sampled
    /// via mincore at list() time for mmap mounts.
    std::size_t resident_bytes;
  };
  /// Registration-order listing of the live catalog.
  [[nodiscard]] std::vector<Entry> list() const;

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<SnapshotPtr> snapshots_;  // registration order, names unique
};

}  // namespace llpmst::serve
