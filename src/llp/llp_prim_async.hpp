// Asynchronous parallel LLP-Prim: the R set drained by a work-stealing
// worklist instead of bulk-synchronous frontier rounds.
//
// llp_prim_parallel (the default) snapshots R and processes it as a
// super-step with a team barrier between rounds.  This variant is closer to
// the paper's Galois implementation: a vertex fixed through an MWE is pushed
// into the worklist and may be processed by any worker *immediately*, with
// no barrier until R is globally exhausted — the "vertices in R can be
// explored in any order, in parallel" property taken to its asynchronous
// conclusion.  The heap phase between drains remains sequential, as in all
// LLP-Prim variants.
//
// Same unique MST, same instrumentation; the super-step/async difference is
// what bench_ablation_llp_prim's async row measures.
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

/// Runs on ctx.executor().
[[nodiscard]] MstResult llp_prim_async(const CsrGraph& g, RunContext& ctx,
                                       VertexId root = 0);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm llp_prim_async_algorithm();

}  // namespace llpmst
