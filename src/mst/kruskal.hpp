// Kruskal's algorithm: globally sort edges by priority, add each edge that
// joins two different union-find components.  Handles forests naturally.
// Serves as the oracle implementation in tests (simplest to audit) and as a
// sequential baseline.
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class CancelToken;
class RunContext;

[[nodiscard]] MstResult kruskal(const CsrGraph& g);
/// Kruskal with a cooperative cancellation checkpoint (and the
/// "kruskal/scan" failpoint) every 1024 scanned edges.  A cancelled run
/// returns the partial forest built so far with the token's reason in
/// stats.outcome — this is the path mst::auto's sequential fallback runs
/// on, so even the fallback honours deadlines and user cancels.
[[nodiscard]] MstResult kruskal_cancellable(const CsrGraph& g,
                                            const CancelToken* cancel);
/// Uniform registry entry point: polls ctx.cancel_token().
[[nodiscard]] MstResult kruskal(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm kruskal_algorithm();

}  // namespace llpmst
