#include "sim/sim_executor.hpp"

#include <new>
#include <utility>

#include "support/assert.hpp"
#include "support/failpoint.hpp"

namespace llpmst::sim {

SimExecutor::SimExecutor(const Options& options)
    : workers_(options.replay != nullptr
                   ? options.replay->workers
                   : (options.workers == 0 ? 1 : options.workers)),
      seed_(options.replay != nullptr ? options.replay->seed : options.seed),
      step_ns_(options.step_ns == 0 ? 1 : options.step_ns),
      rng_(SplitMix64::mix(seed_ ^ 0x51a17ab1eull)),
      replay_(options.replay) {
  LLPMST_CHECK_MSG(workers_ <= 255, "schedule traces encode worker ids in "
                                    "a byte");
  if (!options.timeline.empty() && !timeline_.parse(options.timeline)) {
    timeline_error_ = timeline_.error();
  }
  timeline_.bind(nullptr, &clock_);

  state_.assign(workers_, WorkerState::kIdle);
  hook_ctx_.resize(workers_);
  hook_tables_.resize(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    hook_ctx_[w] = HookCtx{this, w};
    hook_tables_[w] = simhook::WorkerHooks{
        &hook_ctx_[w],
        [](void* c) {
          auto* hc = static_cast<HookCtx*>(c);
          hc->exec->worker_preempt(hc->worker);
        },
        [](void* c, std::uint64_t ns) {
          auto* hc = static_cast<HookCtx*>(c);
          hc->exec->worker_sleep(hc->worker, ns);
        },
        [](void* c, const char* name) {
          auto* hc = static_cast<HookCtx*>(c);
          hc->exec->timeline_.on_failpoint(name);
        }};
  }

  // The executor owns virtual time for its lifetime: CancelToken deadlines
  // and grain clocks read simulated nanoseconds from here on.
  prev_clock_ = vtime::install_clock(&clock_);
  // The constructing thread gets worker 0's hooks immediately, so failpoint
  // hits and sleeps in SEQUENTIAL phases (between team regions) also reach
  // the timeline and the virtual clock.
  main_prev_hooks_ = simhook::install(&hook_tables_[0]);

  threads_.reserve(workers_ > 0 ? workers_ - 1 : 0);
  for (std::size_t id = 1; id < workers_; ++id) {
    threads_.emplace_back([this, id] { worker_thread(id); });
  }
}

SimExecutor::~SimExecutor() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  simhook::install(main_prev_hooks_);
  vtime::install_clock(prev_clock_);
}

ScheduleTrace SimExecutor::trace() const {
  ScheduleTrace t;
  t.seed = seed_;
  t.workers = static_cast<std::uint32_t>(workers_);
  t.picks = picks_;
  return t;
}

void SimExecutor::run_region_impl(const TeamFn& fn) {
  {
    std::lock_guard lock(mutex_);
    LLPMST_CHECK_MSG(!region_active_, "SimExecutor regions are not reentrant");
    job_ = fn;
    region_active_ = true;
    for (std::size_t w = 0; w < workers_; ++w) state_[w] = WorkerState::kReady;
    unfinished_ = workers_;
    granted_ = kNone;
    first_exception_ = nullptr;
    ++epoch_;
    // The first decision of the region: who starts.
    schedule_next_locked();
  }
  cv_.notify_all();

  // The submitting thread participates as worker 0 (its body may itself be
  // granted first, last, or anywhere between).
  run_worker(0, fn);

  std::exception_ptr thrown;
  {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return unfinished_ == 0; });
    region_active_ = false;
    job_ = TeamFn{};
    thrown = std::exchange(first_exception_, nullptr);
  }
  if (thrown != nullptr) std::rethrow_exception(thrown);
}

void SimExecutor::worker_thread(std::size_t id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    TeamFn job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    run_worker(id, job);
  }
}

void SimExecutor::run_worker(std::size_t id, const TeamFn& fn) {
  {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return granted_ == id; });
    state_[id] = WorkerState::kRunning;
  }
  // Hooks scope: preemption points inside fn park THIS worker.
  simhook::ScopedHooks scoped(&hook_tables_[id]);
  std::exception_ptr thrown;
  try {
    // Parity with ThreadPool's per-worker region entry: the same "pool/task"
    // chaos hook fires here, so failpoint specs behave identically under
    // simulation (modulo the deterministic schedule).
    switch (LLPMST_FAILPOINT("pool/task")) {
      case fail::Action::kError:
        throw fail::FailpointError("pool/task");
      case fail::Action::kAlloc:
        throw std::bad_alloc();
      case fail::Action::kNone:
        break;
    }
    fn.invoke(fn.obj, id);
  } catch (...) {
    thrown = std::current_exception();
  }
  {
    std::lock_guard lock(mutex_);
    if (thrown != nullptr && first_exception_ == nullptr) {
      first_exception_ = thrown;  // first thrower wins, as in ThreadPool
    }
    state_[id] = WorkerState::kDone;
    granted_ = kNone;
    --unfinished_;
    schedule_next_locked();
  }
  cv_.notify_all();  // wakes the next grant and, when last, the region join
}

void SimExecutor::schedule_next_locked() {
  // Runnable = parked-or-unstarted workers of the active region.
  std::size_t runnable = 0;
  for (std::size_t w = 0; w < workers_; ++w) {
    if (state_[w] == WorkerState::kReady) ++runnable;
  }
  if (runnable == 0) {
    granted_ = kNone;
    return;
  }
  ++decisions_;
  clock_.advance_ns(step_ns_);
  // Timeline @step triggers observe the decision ordinal BEFORE the pick,
  // so an action armed "at step S" influences the code the S-th granted
  // worker runs next.
  timeline_.on_step(decisions_);

  bool picked = false;
  if (replay_ != nullptr && replay_pos_ < replay_->picks.size()) {
    const std::size_t want = replay_->picks[replay_pos_++];
    if (want < workers_ && state_[want] == WorkerState::kReady) {
      granted_ = want;
      picked = true;
    } else {
      replay_diverged_ = true;
    }
  } else if (replay_ == nullptr) {
    std::size_t index = static_cast<std::size_t>(rng_.next() % runnable);
    for (std::size_t w = 0; w < workers_; ++w) {
      if (state_[w] != WorkerState::kReady) continue;
      if (index == 0) {
        granted_ = w;
        picked = true;
        break;
      }
      --index;
    }
  }
  if (!picked) {
    // Trace exhausted (a minimized prefix) or diverged: continue with a
    // deterministic ROUND-ROBIN fill.  Round-robin rather than lowest-id
    // because lowest-id can livelock — a low-id worker spinning in the
    // steal backoff would be re-granted forever while the worker holding
    // the last item never runs.
    for (std::size_t off = 1; off <= workers_; ++off) {
      const std::size_t w = (last_pick_ + off) % workers_;
      if (state_[w] == WorkerState::kReady) {
        granted_ = w;
        break;
      }
    }
  }
  last_pick_ = granted_;
  picks_.push_back(static_cast<std::uint8_t>(granted_));
  cv_.notify_all();
}

void SimExecutor::worker_preempt(std::size_t id) {
  std::unique_lock lock(mutex_);
  // The main thread carries worker 0's hooks even between regions, where a
  // preempt has nothing to schedule.
  if (!region_active_ || state_[id] != WorkerState::kRunning) return;
  state_[id] = WorkerState::kReady;
  granted_ = kNone;
  schedule_next_locked();
  cv_.wait(lock, [&] { return granted_ == id; });
  state_[id] = WorkerState::kRunning;
}

void SimExecutor::worker_sleep(std::size_t id, std::uint64_t ns) {
  // A virtual sleep costs simulated time plus one scheduling decision —
  // the sleeper yields, everyone else gets a chance to run "during" it.
  clock_.advance_ns(ns);
  worker_preempt(id);
}

}  // namespace llpmst::sim
