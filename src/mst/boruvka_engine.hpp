// Shared round engine for the two parallel Boruvka variants.
//
// Both the GBBS-style baseline (mst/parallel_boruvka.hpp) and LLP-Boruvka
// (llp/llp_boruvka.hpp, the paper's Algorithm 6) perform the same rounds:
//
//   1. per-component minimum-weight-edge (MWE) selection — parallel over the
//      active edge list with an atomic min on each endpoint's packed
//      priority;
//   2. hook — each component chooses its parent across its MWE, breaking the
//      2-cycle of a mutually-chosen edge by vertex id (Algorithm 6's
//      "break symmetry with w" initialization) and emitting the edge into
//      the MSF;
//   3. pointer jumping until every component is a rooted star — THIS is
//      where the two algorithms differ (see PointerJumping below);
//   4. contraction — remap active edges to star roots and drop self-loops
//      (optionally deduplicate parallel bundles, the baseline's behaviour).
//
// Components keep their original vertex-id space across rounds (no dense
// relabeling); the invariant is that at the start of every round parent[x]
// is the current component root of every original vertex x.
#pragma once

#include "mst/mst_result.hpp"
#include "parallel/thread_pool.hpp"
#include "support/cancel.hpp"

namespace llpmst {

/// How step 3 runs.
enum class PointerJumping {
  /// Bulk-synchronous: repeat { next[v] = parent[parent[v]] } with a barrier
  /// between jump rounds until a fixpoint — the conventional parallel
  /// formulation the baseline uses.
  kSynchronized,
  /// Chaotic/asynchronous: one parallel pass in which every vertex chases
  /// its chain to the root with relaxed atomics and writes it back — the
  /// paper's LLP formulation (`forbidden(j) = G[j] != G[G[j]]`,
  /// `advance(j) = G[j] := G[G[j]]`) "evaluated in parallel and without
  /// synchronization".
  kAsynchronous,
};

struct BoruvkaConfig {
  PointerJumping jumping = PointerJumping::kAsynchronous;
  /// Deduplicate parallel edges between the same pair of components after
  /// contraction (keeping the lightest).  The baseline does; LLP-Boruvka
  /// skips it, trading a longer edge list for no sort barrier.
  bool dedup_contracted_edges = false;
  /// Prefix for observability metrics/phases ("<obs_label>/round/hook", ...)
  /// so the two engine clients stay distinguishable in reports.  Must be a
  /// string literal (borrowed, not owned).
  const char* obs_label = "boruvka";
  /// Optional cooperative cancellation, polled once per round (rounds shrink
  /// the edge list geometrically, so this is O(log n) polls total).  A
  /// triggered token — or the "boruvka/contract" failpoint — stops the run
  /// with stats.outcome != kOk and the PARTIAL forest built so far.
  const CancelToken* cancel = nullptr;
};

/// Runs Boruvka rounds until no edges remain; returns the unique MSF.
[[nodiscard]] MstResult boruvka_engine(const CsrGraph& g, ThreadPool& pool,
                                       const BoruvkaConfig& config);

}  // namespace llpmst
