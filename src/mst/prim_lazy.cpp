#include "mst/prim_lazy.hpp"

#include "ds/lazy_heap.hpp"
#include "mst/prim_heaps.hpp"

namespace llpmst {

MstResult prim_lazy(const CsrGraph& g, VertexId root) {
  return prim_with_heap<LazyHeap<EdgePriority>>(g, root);
}

}  // namespace llpmst
