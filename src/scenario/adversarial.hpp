// Adversarial graph generators for the scenario suite.
//
// The paper evaluates two workload families (graph500 RMAT and USA roads).
// These generators target the *implementation's* weak points instead:
// near-duplicate weights stress priority tie-breaking, bundle-heavy
// multigraphs stress the contraction dedup's bounded probe cap, and hybrids
// mix morphologies so no single scheduling heuristic fits the whole graph.
// All are deterministic in (params, seed).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace llpmst {

struct BundleHeavyParams {
  /// Vertex clusters joined internally by light paths; contraction round 1
  /// collapses each cluster to a single super-vertex.
  std::uint32_t clusters = 24;
  std::uint32_t cluster_size = 24;
  /// Heavy inter-cluster edges per cluster pair (distinct endpoint pairs, so
  /// normalize() keeps them all).  After round 1 every one of them becomes a
  /// parallel edge of the same super-pair — a bundle the dedup probe cap
  /// (BoruvkaConfig::filter kMaxProbes) must survive.
  std::uint32_t bundle_width = 48;
  std::uint64_t seed = 1;
};

/// Bundle-heavy multigraph: light intra-cluster paths, wide heavy
/// inter-cluster bundles.  Connected by construction (paths + a bundle
/// between consecutive clusters).
[[nodiscard]] EdgeList make_bundle_heavy(const BundleHeavyParams& params);

struct NearDuplicateParams {
  std::uint32_t num_vertices = 2048;
  std::uint64_t num_edges = 12288;
  /// Weights are drawn from [base, base + spread] — spread 1 gives the
  /// maximal-tie regime where ordering is decided almost purely by edge id.
  Weight base = 1000;
  Weight spread = 1;
  std::uint64_t seed = 1;
};

/// Erdős–Rényi topology whose weights all collide within `spread` of each
/// other: the unique-MSF tie-break (priority = (weight, id)) does all the
/// work.
[[nodiscard]] EdgeList make_near_duplicate_weights(
    const NearDuplicateParams& params);

struct GeoRoadHybridParams {
  std::uint32_t road_width = 48;
  std::uint32_t road_height = 48;
  /// Extra geometric (k-nearest) overlay vertices appended after the grid.
  std::uint32_t geo_vertices = 1024;
  std::uint32_t geo_neighbors = 5;
  /// Sparse random bridges stitching the two morphologies together.
  std::uint32_t bridges = 64;
  std::uint64_t seed = 1;
};

/// Road grid + geometric cloud + random bridges: low-degree/high-diameter
/// and irregular-degree regions in one graph, so per-round scheduling
/// decisions (grain, steal fallback) face both shapes at once.  Connected.
[[nodiscard]] EdgeList make_geo_road_hybrid(const GeoRoadHybridParams& params);

}  // namespace llpmst
