#include "graph/algorithms/connected_components.hpp"

#include <atomic>

#include "ds/union_find.hpp"
#include "parallel/atomic_utils.hpp"
#include "parallel/parallel_for.hpp"
#include "support/assert.hpp"

namespace llpmst {

ComponentsResult connected_components(const EdgeList& list) {
  const std::size_t n = list.num_vertices();
  UnionFind uf(n);
  for (const WeightedEdge& e : list.edges()) uf.unite(e.u, e.v);

  ComponentsResult r;
  r.label.assign(n, kInvalidVertex);
  // Min-id labeling: first pass records the minimum id per root, second pass
  // assigns it.  Iterating ids ascending makes the first visitor of a root
  // the minimum member.
  std::vector<VertexId> root_min(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId root = uf.find(v);
    if (root_min[root] == kInvalidVertex) root_min[root] = v;
  }
  for (VertexId v = 0; v < n; ++v) {
    r.label[v] = root_min[uf.find(v)];
  }
  r.num_components = uf.num_sets();
  return r;
}

ComponentsResult connected_components_parallel(const EdgeList& list,
                                               Executor& pool) {
  const std::size_t n = list.num_vertices();
  const auto& edges = list.edges();

  std::vector<std::atomic<VertexId>> label(n);
  parallel_for(pool, 0, n, [&](std::size_t v) {
    label[v].store(static_cast<VertexId>(v), std::memory_order_relaxed);
  });

  // Hook-and-shortcut min-label propagation.  Labels only ever decrease, so
  // the relaxed races are benign and the loop terminates (each round either
  // lowers some label or we stop).
  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);

    parallel_for(pool, 0, edges.size(), [&](std::size_t i) {
      const VertexId u = edges[i].u, v = edges[i].v;
      const VertexId lu = label[u].load(std::memory_order_relaxed);
      const VertexId lv = label[v].load(std::memory_order_relaxed);
      if (lu < lv) {
        if (atomic_fetch_min(label[v], lu)) {
          changed.store(true, std::memory_order_relaxed);
        }
      } else if (lv < lu) {
        if (atomic_fetch_min(label[u], lv)) {
          changed.store(true, std::memory_order_relaxed);
        }
      }
    });

    // Shortcut: chase labels down to a local fixpoint (pointer jumping).
    parallel_for(pool, 0, n, [&](std::size_t v) {
      VertexId l = label[v].load(std::memory_order_relaxed);
      for (;;) {
        const VertexId ll = label[l].load(std::memory_order_relaxed);
        if (ll == l) break;
        l = ll;
      }
      atomic_fetch_min(label[v], l);
    });
  }

  ComponentsResult r;
  r.label.resize(n);
  std::size_t roots = 0;
  for (std::size_t v = 0; v < n; ++v) {
    r.label[v] = label[v].load(std::memory_order_relaxed);
    if (r.label[v] == v) ++roots;
  }
  r.num_components = roots;
  return r;
}

bool is_connected(const EdgeList& list) {
  if (list.num_vertices() == 0) return false;
  return connected_components(list).num_components == 1;
}

}  // namespace llpmst
