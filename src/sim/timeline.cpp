#include "sim/timeline.hpp"

#include <charconv>

#include "support/failpoint.hpp"

namespace llpmst::sim {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  s = trim(s);
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// Splits on top-level commas only — commas never appear inside the paren
/// arguments we accept, but being paren-aware keeps the grammar honest if
/// they ever do.
std::vector<std::string_view> split_entries(std::string_view spec) {
  std::vector<std::string_view> out;
  std::size_t depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    if (spec[i] == '(') ++depth;
    if (spec[i] == ')' && depth > 0) --depth;
    if (spec[i] == ',' && depth == 0) {
      out.push_back(spec.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(spec.substr(start));
  return out;
}

}  // namespace

bool Timeline::parse(std::string_view spec) {
  entries_.clear();
  error_.clear();
  const auto fail = [this](std::string_view entry, const char* why) {
    error_ = "malformed timeline entry '" + std::string(entry) + "': " + why;
    entries_.clear();
    return false;
  };
  for (std::string_view raw : split_entries(spec)) {
    const std::string_view entry = trim(raw);
    if (entry.empty()) continue;
    Entry e{};

    // ---- Trigger: "@<step>:" or "hit(<point>:<k>):".
    std::string_view rest;
    if (entry.front() == '@') {
      const auto colon = entry.find(':');
      if (colon == std::string_view::npos) return fail(entry, "missing ':'");
      std::uint64_t step = 0;
      if (!parse_u64(entry.substr(1, colon - 1), step) || step == 0) {
        return fail(entry, "bad step ordinal");
      }
      e.trigger = TriggerKind::kAtStep;
      e.at = step;
      rest = entry.substr(colon + 1);
    } else if (entry.starts_with("hit(")) {
      const auto close = entry.find(')');
      if (close == std::string_view::npos) return fail(entry, "missing ')'");
      const std::string_view inner = entry.substr(4, close - 4);
      const auto colon = inner.rfind(':');
      if (colon == std::string_view::npos) {
        return fail(entry, "hit() needs <point>:<k>");
      }
      std::uint64_t k = 0;
      if (!parse_u64(inner.substr(colon + 1), k) || k == 0) {
        return fail(entry, "bad hit ordinal");
      }
      const std::string_view point = trim(inner.substr(0, colon));
      if (point.empty()) return fail(entry, "empty point name");
      e.trigger = TriggerKind::kOnHit;
      e.point = std::string(point);
      e.at = k;
      const std::string_view after = trim(entry.substr(close + 1));
      if (after.empty() || after.front() != ':') {
        return fail(entry, "missing ':' after hit()");
      }
      rest = after.substr(1);
    } else {
      return fail(entry, "trigger must be '@<step>' or 'hit(<point>:<k>)'");
    }

    // ---- Action.
    const std::string_view action = trim(rest);
    if (action == "cancel") {
      e.action = ActionKind::kCancel;
    } else if (action.starts_with("arm(") && action.back() == ')') {
      const std::string_view inner = action.substr(4, action.size() - 5);
      const auto eq = inner.find('=');
      if (eq == std::string_view::npos || eq == 0 || eq + 1 == inner.size()) {
        return fail(entry, "arm() needs <name>=<spec>");
      }
      e.action = ActionKind::kArm;
      e.arm_name = std::string(trim(inner.substr(0, eq)));
      e.arm_spec = std::string(trim(inner.substr(eq + 1)));
    } else if (action.starts_with("advance(") && action.back() == ')') {
      if (!parse_u64(action.substr(8, action.size() - 9), e.advance_ms)) {
        return fail(entry, "advance() needs a millisecond count");
      }
      e.action = ActionKind::kAdvance;
    } else {
      return fail(entry, "action must be cancel, arm(...), or advance(...)");
    }
    entries_.push_back(std::move(e));
  }
  return true;
}

std::size_t Timeline::pending() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.fired ? 0 : 1;
  return n;
}

void Timeline::fire(Entry& e) {
  e.fired = true;
  switch (e.action) {
    case ActionKind::kCancel:
      if (token_ != nullptr) token_->cancel();
      break;
    case ActionKind::kArm:
      // Malformed specs were NOT validated at parse time (the spec grammar
      // belongs to the failpoint registry); a bad one is simply ignored
      // here, mirroring fail::configure's permissiveness.
      (void)fail::arm(e.arm_name, e.arm_spec);
      break;
    case ActionKind::kAdvance:
      if (clock_ != nullptr) clock_->advance_ns(e.advance_ms * 1'000'000);
      break;
  }
}

void Timeline::on_step(std::uint64_t decision) {
  for (Entry& e : entries_) {
    if (!e.fired && e.trigger == TriggerKind::kAtStep && decision >= e.at) {
      fire(e);
    }
  }
}

void Timeline::on_failpoint(std::string_view point) {
  // The timeline keeps its own per-point hit counts: the registry's
  // hit_count() only counts ARMED points, while "arm X on its 3rd hit"
  // must count hits before X is armed at all.
  std::uint64_t count = 0;
  bool found = false;
  for (auto& [name, hits] : hit_counts_) {
    if (name == point) {
      count = ++hits;
      found = true;
      break;
    }
  }
  if (!found) {
    hit_counts_.emplace_back(std::string(point), 1);
    count = 1;
  }
  for (Entry& e : entries_) {
    if (!e.fired && e.trigger == TriggerKind::kOnHit && e.point == point &&
        count >= e.at) {
      fire(e);
    }
  }
}

}  // namespace llpmst::sim
