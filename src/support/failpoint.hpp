// Named fault-injection points (failpoints) for chaos testing.
//
// A failpoint is a named hook compiled into interesting places — reader
// entry, thread-pool task dispatch, LLP sweep loops, the LLP-Prim bag/heap
// handoff, Boruvka contraction — that normally does nothing.  Tests, the
// LLPMST_FAILPOINTS environment variable, or `mst_tool --failpoints` arm a
// point with a *spec*, after which hitting it can perturb the schedule
// (sleep/yield) or force a failure (error return, simulated allocation
// failure).  This is how we test that the loosely-synchronized algorithms
// are correct under ANY schedule, not just the default one, and that the
// error paths actually work.
//
// Spec grammar (one point):      [<prob>%][<count>*]<task>[(<arg>)]
//   tasks:  off          disarm
//           return       the site returns an error (Action::kError)
//           alloc        simulated allocation failure (Action::kAlloc)
//           sleep(us)    sleep for `us` microseconds, then continue
//           yield        std::this_thread::yield(), then continue
//   <prob>%   fire with this probability per hit (deterministic RNG)
//   <count>*  fire at most `count` times ("1*return" = fire-once)
// Multiple points:               name=spec;name=spec;...
// Examples:
//   io/dimacs=return              every read_dimacs call fails
//   pool/task=25%yield            a quarter of team tasks yield at start
//   llp_prim/handoff=1*sleep(500) first heap handoff stalls 500us
//
// Compile-out contract (mirrors the observability layer): building with
// -DLLPMST_FAILPOINTS=0 turns every hook into `return Action::kNone` and the
// whole registry into stubs, so production builds pay literally nothing.
// With failpoints compiled in but nothing armed, a hook costs one relaxed
// atomic load.
#pragma once

#ifndef LLPMST_FAILPOINTS
#define LLPMST_FAILPOINTS 1
#endif

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#if LLPMST_FAILPOINTS
#include <atomic>

#include "support/sim_hooks.hpp"
#endif

namespace llpmst::fail {

/// True when the library was compiled with failpoint support.
inline constexpr bool kCompiledIn = LLPMST_FAILPOINTS != 0;

/// What the hit site must do.  Sleep/yield perturbation happens *inside* the
/// hook and still returns kNone — only failure tasks reach the caller.
enum class Action : std::uint8_t {
  kNone = 0,  // proceed normally
  kError,     // return a Status{kInjectedFault} / throw FailpointError
  kAlloc,     // behave as if an allocation failed
};

/// Thrown by sites that have no error-return channel (thread-pool tasks);
/// surfaces to the submitter via ThreadPool's exception propagation.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& point)
      : std::runtime_error("injected failpoint: " + point) {}
};

#if LLPMST_FAILPOINTS

/// Arms `name` with `spec` (grammar above).  Returns false (and arms
/// nothing) on a malformed spec.  "off" disarms.
bool arm(std::string_view name, std::string_view spec);

void disarm(std::string_view name);
void disarm_all();

/// Parses a "name=spec;name=spec" list.  Returns the number of points
/// armed; on the first malformed entry stops and, when `error` is non-null,
/// describes it.  Entries without '=' are ignored (so LLPMST_FAILPOINTS=0 in
/// the environment arms nothing).
std::size_t configure(std::string_view multi_spec, std::string* error);

/// Reads the LLPMST_FAILPOINTS environment variable (when set) through
/// configure().  Malformed entries are reported on stderr, not fatal.
std::size_t configure_from_env();

/// Seeds the deterministic RNG behind probabilistic specs.  Chaos tests call
/// this per iteration so every seed replays the same perturbation pattern.
void set_seed(std::uint64_t seed);

/// Times `name` was hit / fired since it was last armed (arming resets the
/// counters; disarming preserves them).  For test assertions.
[[nodiscard]] std::uint64_t hit_count(std::string_view name);
[[nodiscard]] std::uint64_t fire_count(std::string_view name);

/// Names of all currently armed points (for diagnostics).
[[nodiscard]] std::vector<std::string> armed_points();

namespace detail {
extern std::atomic<int> g_armed_count;
Action evaluate(const char* name);
}  // namespace detail

/// True when at least one point is armed (one relaxed load — the fast path).
[[nodiscard]] inline bool any_armed() {
  return detail::g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// The hook the macro expands to: free when nothing is armed.  Under the
/// deterministic simulator every hit is ALSO reported to the scenario
/// timeline — before the armed check, because "arm point X on its k-th hit"
/// must count hits of points that are not armed yet.
[[nodiscard]] inline Action hit(const char* name) {
  if (simhook::active()) simhook::notify_failpoint(name);
  return any_armed() ? detail::evaluate(name) : Action::kNone;
}

#else  // !LLPMST_FAILPOINTS — everything is a no-op the optimizer deletes.

inline bool arm(std::string_view, std::string_view) { return false; }
inline void disarm(std::string_view) {}
inline void disarm_all() {}
inline std::size_t configure(std::string_view, std::string*) { return 0; }
inline std::size_t configure_from_env() { return 0; }
inline void set_seed(std::uint64_t) {}
[[nodiscard]] inline std::uint64_t hit_count(std::string_view) { return 0; }
[[nodiscard]] inline std::uint64_t fire_count(std::string_view) { return 0; }
[[nodiscard]] inline std::vector<std::string> armed_points() { return {}; }
[[nodiscard]] inline bool any_armed() { return false; }
[[nodiscard]] inline Action hit(const char*) { return Action::kNone; }

#endif  // LLPMST_FAILPOINTS

}  // namespace llpmst::fail

/// The instrumentation macro.  Usage at a site with an error channel:
///   if (LLPMST_FAILPOINT("io/dimacs") != fail::Action::kNone) return ...;
/// In an LLPMST_FAILPOINTS=0 build this is a constant the branch folds on.
#define LLPMST_FAILPOINT(name) (::llpmst::fail::hit(name))
