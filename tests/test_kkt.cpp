// KKT randomized MSF and the shared ForestPathIndex.
#include <gtest/gtest.h>

#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/special.hpp"
#include "mst/forest_path.hpp"
#include "mst/kkt.hpp"
#include "mst/kruskal.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

// ---------------------------------------------------------------- index

TEST(ForestPathIndex, PathGraphQueries) {
  // Path 0-1-2-3 with weights 10, 20, 5.
  EdgeList list(4);
  list.add_edge(0, 1, 10);
  list.add_edge(1, 2, 20);
  list.add_edge(2, 3, 5);
  list.normalize();
  const CsrGraph g = csr(list);
  std::vector<EdgeId> all{0, 1, 2};
  const ForestPathIndex idx(g, all);

  EXPECT_TRUE(idx.connected(0, 3));
  EXPECT_EQ(priority_weight(idx.max_on_path(0, 3)), 20u);
  EXPECT_EQ(priority_weight(idx.max_on_path(2, 3)), 5u);
  EXPECT_EQ(idx.max_on_path(1, 1), 0u);
}

TEST(ForestPathIndex, DisconnectedTrees) {
  EdgeList list(4);
  list.add_edge(0, 1, 7);
  list.add_edge(2, 3, 9);
  list.normalize();
  const CsrGraph g = csr(list);
  const ForestPathIndex idx(g, {0, 1});
  EXPECT_FALSE(idx.connected(0, 2));
  EXPECT_TRUE(idx.connected(2, 3));
  // Cross-tree edges are always light.
  EXPECT_TRUE(idx.is_light(0, 2, make_priority(1000, 5)));
}

TEST(ForestPathIndex, IsLightMatchesCycleProperty) {
  const CsrGraph g = csr(make_paper_figure1());
  const MstResult mst = kruskal(g);
  const ForestPathIndex idx(g, mst.edges);
  // Tree edges ARE light w.r.t. their own tree (they equal the path max and
  // heaviness is strict) — KKT must never filter the forest's own edges.
  for (const EdgeId e : mst.edges) {
    const WeightedEdge& we = g.edge(e);
    EXPECT_TRUE(idx.is_light(we.u, we.v, g.edge_priority(e)));
  }
  // Non-tree edges of an MST are F-heavy (cycle property).
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (std::find(mst.edges.begin(), mst.edges.end(), e) != mst.edges.end()) {
      continue;
    }
    const WeightedEdge& we = g.edge(e);
    EXPECT_FALSE(idx.is_light(we.u, we.v, g.edge_priority(e)))
        << "edge " << e;
  }
}

// ---------------------------------------------------------------- kkt

TEST(Kkt, MatchesKruskalOnKnownGraphs) {
  ThreadPool pool(1);
  const CsrGraph fig1 = csr(make_paper_figure1());
  EXPECT_EQ(kkt_msf(fig1).edges, kruskal(fig1).edges);
  const CsrGraph cyc = csr(make_cycle(64));
  EXPECT_EQ(kkt_msf(cyc).edges, kruskal(cyc).edges);
  const CsrGraph star = csr(make_star(100));
  EXPECT_EQ(kkt_msf(star).edges, kruskal(star).edges);
}

TEST(Kkt, MatchesKruskalAcrossSeedsAndGraphs) {
  // The MSF is unique, so every random seed must give the identical result.
  for (std::uint64_t graph_seed = 1; graph_seed <= 3; ++graph_seed) {
    ErdosRenyiParams p;
    p.num_vertices = 1500;
    p.num_edges = 9000;
    p.seed = graph_seed;
    const CsrGraph g = csr(generate_erdos_renyi(p));
    const MstResult reference = kruskal(g);
    for (std::uint64_t kkt_seed = 1; kkt_seed <= 4; ++kkt_seed) {
      ASSERT_EQ(kkt_msf(g, kkt_seed).edges, reference.edges)
          << "graph seed " << graph_seed << ", kkt seed " << kkt_seed;
    }
  }
}

TEST(Kkt, RoadAndRmatWorkloads) {
  RoadParams rp;
  rp.width = 48;
  rp.height = 48;
  const CsrGraph road = csr(generate_road_network(rp));
  EXPECT_EQ(kkt_msf(road).edges, kruskal(road).edges);

  RmatParams mp;
  mp.scale = 11;
  mp.edge_factor = 8;
  const CsrGraph rmat = csr(generate_rmat(mp));
  const MstResult r = kkt_msf(rmat);
  EXPECT_EQ(r.edges, kruskal(rmat).edges);
  EXPECT_GT(r.num_trees, 1u);  // RMAT samples are disconnected: MSF path
}

TEST(Kkt, ForestsAndTrivialInputs) {
  const CsrGraph forest = csr(make_forest(5, 80, 9));
  EXPECT_EQ(kkt_msf(forest).edges, kruskal(forest).edges);
  EXPECT_TRUE(kkt_msf(csr(EdgeList(3))).edges.empty());
  EXPECT_TRUE(kkt_msf(csr(EdgeList(0))).edges.empty());
}

TEST(Kkt, DenseGraphExercisesSamplingPath) {
  // Complete graph: far above the base threshold after two Boruvka steps.
  const CsrGraph g = csr(make_complete(120, 17));
  EXPECT_EQ(kkt_msf(g).edges, kruskal(g).edges);
}

}  // namespace
}  // namespace llpmst
