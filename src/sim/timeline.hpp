// Scripted fault timelines for the deterministic simulator.
//
// A timeline binds *when* to the simulation's own notion of time, so fault
// scripts replay exactly: triggers fire at a scheduler decision count or on
// the k-th hit of a named failpoint site, never at a wall-clock instant.
//
// Grammar (entries joined with ','):
//   @<step>: <action>            fire when the scheduler takes decision
//                                number <step> (1-based)
//   hit(<point>:<k>): <action>   fire on the k-th hit of failpoint site
//                                <point> (1-based; hits are counted by the
//                                timeline itself, armed or not)
// Actions:
//   arm(<name>=<spec>)           arm a failpoint (PR 2 spec grammar; '='
//                                inside the parens, e.g.
//                                arm(llp/sweep=1*return))
//   cancel                       cancel the bound CancelToken
//   advance(<ms>)                advance the virtual clock by <ms> ms
//
// Examples:
//   "@40: arm(pool/task=1*return)"
//   "hit(llp/sweep:3): cancel, @200: advance(50)"
//
// Semantics worth knowing: an on-hit arm() takes effect from the NEXT hit
// of the armed point — the triggering hit has already passed its armed
// check by the time the timeline sees it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/cancel.hpp"
#include "support/virtual_time.hpp"

namespace llpmst::sim {

class Timeline {
 public:
  /// Parses `spec` (grammar above).  Returns false and records a
  /// description in error() on the first malformed entry; a failed parse
  /// leaves the timeline empty.
  bool parse(std::string_view spec);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t pending() const;

  /// Binds the objects actions act on.  Both may be null (matching actions
  /// become no-ops).
  void bind(CancelToken* token, vtime::VirtualClock* clock) {
    token_ = token;
    clock_ = clock;
  }

  /// The scheduler reports each decision ordinal; fires due @step entries.
  void on_step(std::uint64_t decision);

  /// Failpoint sites report every hit (via simhook::notify_failpoint);
  /// fires due hit(point:k) entries.
  void on_failpoint(std::string_view point);

 private:
  enum class TriggerKind : std::uint8_t { kAtStep, kOnHit };
  enum class ActionKind : std::uint8_t { kArm, kCancel, kAdvance };

  struct Entry {
    TriggerKind trigger;
    std::uint64_t at = 0;        // decision ordinal / hit ordinal
    std::string point;           // kOnHit: which site
    ActionKind action;
    std::string arm_name;        // kArm
    std::string arm_spec;        // kArm
    std::uint64_t advance_ms = 0;  // kAdvance
    bool fired = false;
  };

  void fire(Entry& e);

  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, std::uint64_t>> hit_counts_;
  std::string error_;
  CancelToken* token_ = nullptr;
  vtime::VirtualClock* clock_ = nullptr;
};

}  // namespace llpmst::sim
