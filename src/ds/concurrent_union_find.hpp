// Lock-free concurrent union-find.
//
// Wait-free finds with path-halving CAS (a failed halving CAS is benign), and
// lock-free union by "rank" approximated by representative id: the smaller
// root is linked under the larger via CAS on its parent slot.  This is the
// classic Jayanti–Tarjan-style randomized-linking scheme simplified to
// deterministic id-linking, which is what GBBS's union-find variants use for
// MSF; id-linking gives the same O(log n) tree-height bound in expectation on
// the shuffled inputs we feed it, and makes results deterministic.
//
// Used by tests as an oracle under concurrency and by the concurrent Kruskal
// filter in the examples.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace llpmst {

class ConcurrentUnionFind {
 public:
  explicit ConcurrentUnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i].store(static_cast<std::uint32_t>(i),
                       std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t size() const { return parent_.size(); }

  /// Representative of x's set.  Performs CAS path halving; safe to call
  /// concurrently with unite().
  std::uint32_t find(std::uint32_t x) {
    LLPMST_ASSERT(x < parent_.size());
    std::uint32_t p = parent_[x].load(std::memory_order_acquire);
    while (p != x) {
      const std::uint32_t gp = parent_[p].load(std::memory_order_acquire);
      if (gp != p) {
        // Halve: retarget x to its grandparent.  A lost race only skips one
        // shortcut; correctness is unaffected.
        parent_[x].compare_exchange_weak(p, gp, std::memory_order_release,
                                         std::memory_order_relaxed);
      }
      x = p;
      p = parent_[x].load(std::memory_order_acquire);
    }
    return x;
  }

  /// Merges the sets of a and b; the root with the larger id becomes parent
  /// (deterministic final forest shape regardless of interleaving).
  /// Returns true iff this call performed the link.
  bool unite(std::uint32_t a, std::uint32_t b) {
    for (;;) {
      std::uint32_t ra = find(a);
      std::uint32_t rb = find(b);
      if (ra == rb) return false;
      if (ra > rb) std::swap(ra, rb);
      // Link smaller root ra under rb.  CAS can fail if ra was united
      // concurrently; retry from fresh roots.
      std::uint32_t expected = ra;
      if (parent_[ra].compare_exchange_strong(expected, rb,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// True iff a and b are currently in the same set.  Under concurrent
  /// unions the answer is linearizable only when it returns true; callers
  /// that need a stable negative must quiesce first (our MSF phases do).
  bool same_set(std::uint32_t a, std::uint32_t b) {
    for (;;) {
      std::uint32_t ra = find(a);
      std::uint32_t rb = find(b);
      if (ra == rb) return true;
      // ra is a root at the time it was read; if it still is, the negative
      // answer was true at that instant.
      if (parent_[ra].load(std::memory_order_acquire) == ra) return false;
    }
  }

 private:
  std::vector<std::atomic<std::uint32_t>> parent_;
};

}  // namespace llpmst
