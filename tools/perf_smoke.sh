#!/usr/bin/env bash
# Fixed-seed perf smoke: runs a small, fast subset of the figure benches
# (both workload morphologies x {LLP-Prim, LLP-Boruvka} and friends) with
# --bench-json, producing llpmst-bench records that tools/bench_compare.py
# gates against the committed baseline bench/baselines/ci-smoke.json.
#
#   tools/perf_smoke.sh [build-dir] [out-dir]
#   tools/perf_smoke.sh --update-baseline [build-dir]
#
# With --update-baseline the fresh records are merged into the committed
# baseline (pretty-printed JSON array) instead of being compared — run this
# after an intentional perf change and commit the result.
set -euo pipefail

UPDATE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
  UPDATE=1
  shift
fi
BUILD="${1:-build}"
OUT="${2:-perf-smoke-out}"
TOOLS="$(cd "$(dirname "$0")" && pwd)"
BASELINE="$TOOLS/../bench/baselines/ci-smoke.json"

trap 'echo "error: perf smoke failed at: $BASH_COMMAND" >&2' ERR

if [[ ! -d "$BUILD/bench" ]]; then
  echo "error: $BUILD/bench not found — build with -DLLPMST_BUILD_BENCHMARKS=ON first" >&2
  exit 1
fi
mkdir -p "$OUT"

# Smoke scales: small enough for CI minutes, large enough that the medians
# are not pure overhead.  The workload generators are seeded, so the graphs
# are bit-identical across runs and machines.
# Repetitions err high: the smoke graphs are small, so each datapoint is
# cheap, and the IQR noise guard is only as honest as the sample it sees.
echo "=== bench_fig2_single_thread (smoke) ==="
"$BUILD/bench/bench_fig2_single_thread" --road-side 128 --scale 11 --reps 9 \
  --bench-json "$OUT/fig2.bench.jsonl" > "$OUT/fig2.txt"
echo "=== bench_fig3_scaling (smoke) ==="
"$BUILD/bench/bench_fig3_scaling" --road-side 128 --threads 1,2 --reps 9 \
  --bench-json "$OUT/fig3.bench.jsonl" > "$OUT/fig3.txt"
echo "=== bench_fig3_scaling (scenario smoke) ==="
# A scenario-registry workload (--workload scenario:NAME) so the smoke
# also covers the regime the adversarial/conformance tests run, keyed by
# regime name ("scenario:geo-road-hybrid") rather than instance size.
"$BUILD/bench/bench_fig3_scaling" --workload scenario:geo-road-hybrid \
  --threads 1,2 --reps 9 \
  --bench-json "$OUT/fig3-scenario.bench.jsonl" > "$OUT/fig3-scenario.txt"
echo "=== bench_fig4_graph_types (smoke) ==="
"$BUILD/bench/bench_fig4_graph_types" --road-side 128 --scale-small 10 \
  --scale-big 11 --low 1 --high 2 --reps 9 \
  --bench-json "$OUT/fig4.bench.jsonl" > "$OUT/fig4.txt"

python3 "$TOOLS/check_report_schema.py" "$OUT"/*.bench.jsonl

if [[ "$UPDATE" == 1 ]]; then
  mkdir -p "$(dirname "$BASELINE")"
  python3 - "$BASELINE" "$OUT" <<'EOF'
import json, sys
from pathlib import Path

baseline_path, out_dir = Path(sys.argv[1]), Path(sys.argv[2])
docs = []
for f in sorted(out_dir.glob("*.bench.jsonl")):
    for line in f.read_text().splitlines():
        if line.strip():
            docs.append(json.loads(line))
baseline_path.write_text(json.dumps(docs, indent=1) + "\n")
print(f"wrote {len(docs)} record(s) to {baseline_path}")
EOF
else
  # --iqr-mult 3: the smoke datapoints are a few ms each and CI machines
  # are shared, so cross-run medians wander more than a single run's IQR
  # suggests.  A regression must clear 3x the worse of the two IQRs on
  # top of the 25% median threshold before the gate trips; a genuine 2x
  # slowdown still exceeds both by a wide margin.
  python3 "$TOOLS/bench_compare.py" "$BASELINE" "$OUT" \
    --threshold 0.25 --iqr-mult 3

  # Profiler-overhead gate: re-run the fig3 smoke with the sampling
  # profiler armed (default 97 Hz) and hold the profiled medians to
  # within 3% of the unprofiled baseline.  The records share keys with
  # the baseline's fig3 rows, so bench_compare's regression rule doubles
  # as the overhead assertion; they live in a sibling directory because
  # a duplicate (bench, workload, algo, threads) key inside one record
  # set is a hard error.  Where the profiler is unavailable (non-Linux,
  # LLPMST_OBS=0) the bench prints a note and runs unprofiled, so this
  # degrades to a plain noise check instead of failing the smoke.
  PROF_OUT="$OUT-profiled"
  mkdir -p "$PROF_OUT"
  echo "=== bench_fig3_scaling (profiled, overhead gate) ==="
  "$BUILD/bench/bench_fig3_scaling" --road-side 128 --threads 1,2 --reps 9 \
    --profile --bench-json "$PROF_OUT/fig3.bench.jsonl" \
    > "$PROF_OUT/fig3.txt"
  python3 "$TOOLS/check_report_schema.py" "$PROF_OUT"/*.bench.jsonl
  python3 "$TOOLS/bench_compare.py" "$BASELINE" "$PROF_OUT" \
    --threshold 0.03 --iqr-mult 3
fi
