// Reproduces Fig. 4: the parallel algorithms at LOW vs HIGH core counts on
// graphs of different morphologies (road + two graph500 sizes).
//
// Paper's claims to reproduce (shape):
//   * LLP-Prim is the fastest at low core counts, and does relatively
//     better on denser (higher m/n) graph500 graphs than on the road graph;
//   * at high core counts the Boruvka family wins, with LLP-Boruvka
//     slightly ahead of parallel Boruvka.
#include <cstdio>

#include "bench_common.hpp"
#include "core/run_context.hpp"
#include "mst/registry.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_fig4_graph_types",
                "Reproduces Fig. 4 (low vs high core counts across graph "
                "morphologies)");
  auto& road_side = cli.add_int("road-side", 512, "road grid side length");
  auto& scale_small = cli.add_int("scale-small", 14, "small RMAT scale");
  auto& scale_big = cli.add_int("scale-big", 16, "big RMAT scale");
  auto& low = cli.add_int("low", 2, "low thread count");
  auto& high = cli.add_int("high", 16, "high thread count");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  BenchOptions opts;
  opts.repetitions = static_cast<int>(reps);

  const Workload workloads[] = {
      make_road_workload(static_cast<std::uint32_t>(road_side)),
      make_graph500_workload(static_cast<int>(scale_small)),
      make_graph500_workload(static_cast<int>(scale_big)),
  };

  std::printf("Fig. 4: parallel algorithms, low (%lld) vs high (%lld) "
              "thread counts\n\n",
              static_cast<long long>(low), static_cast<long long>(high));

  Table t({"Graph", "m/n", "Threads", "LLP-Prim", "Boruvka", "LLP-Boruvka",
           "Fastest"});

  const MstAlgorithm& llp_prim = mst_algorithm("llp-prim-parallel");
  const MstAlgorithm& boruvka = mst_algorithm("parallel-boruvka");
  const MstAlgorithm& llp_boruvka = mst_algorithm("llp-boruvka");
  RunContext ctx;

  for (const Workload& w : workloads) {
    const MstResult reference = kruskal(w.graph);
    const double mn = static_cast<double>(w.graph.num_edges()) /
                      static_cast<double>(w.graph.num_vertices());
    for (const long long threads :
         {static_cast<long long>(low), static_cast<long long>(high)}) {
      set_bench_context(w.name, static_cast<std::size_t>(threads));
      ThreadPool pool(static_cast<std::size_t>(threads));
      ctx.attach_pool(pool);
      const BenchMeasurement lp = measure_mst(
          llp_prim.name, w.graph, reference,
          [&] { return llp_prim.run(w.graph, ctx); }, opts);
      const BenchMeasurement pb = measure_mst(
          boruvka.name, w.graph, reference,
          [&] { return boruvka.run(w.graph, ctx); }, opts);
      const BenchMeasurement lb = measure_mst(
          llp_boruvka.name, w.graph, reference,
          [&] { return llp_boruvka.run(w.graph, ctx); }, opts);

      const char* fastest = "LLP-Prim";
      double best = lp.time_ms.median;
      if (pb.time_ms.median < best) {
        fastest = "Boruvka";
        best = pb.time_ms.median;
      }
      if (lb.time_ms.median < best) fastest = "LLP-Boruvka";

      t.add_row({w.name, strf("%.2f", mn), strf("%lld", threads),
                 time_cell(lp.time_ms), time_cell(pb.time_ms),
                 time_cell(lb.time_ms), fastest});
    }
  }

  t.print(csv);
  obs_cli.write_table(t);
  obs_cli.finish("bench_fig4_graph_types");
  return 0;
}
