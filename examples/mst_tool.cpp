// mst_tool: end-to-end command-line utility over the public API — the kind
// of binary a downstream user actually runs.
//
//   mst_tool --input graph.gr --algorithm auto --threads 8
//            --output tree.txt --verify
//
// Reads a graph (format detected from leading bytes — magics first, text
// heuristics next, extension as the tie-break; override with
// --graph-format), generates one (--generate road|rmat|er --scale N), or
// runs a named adversarial workload (--scenario NAME, catalog via
// --list-scenarios); runs the chosen MSF algorithm — optionally under the
// deterministic schedule simulator (--sim) — verifies the result, prints a
// report, and can write the chosen edges out.
//
// An `llpmstb` CSR snapshot input is MOUNTED via mmap (zero parse, no CSR
// rebuild); any other source can be converted to one with
// --pack-graph OUT, which writes the snapshot and exits.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/run_context.hpp"
#include "graph/algorithms/degree_stats.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "graph/io/binary_csr.hpp"
#include "graph/io/edge_list_io.hpp"
#include "graph/io/read_graph.hpp"
#include "mst/auto.hpp"
#include "mst/registry.hpp"
#include "mst/verifier.hpp"
#include "obs/critical_path.hpp"
#include "obs/exposition.hpp"
#include "obs/hw_counters.hpp"
#include "obs/mem_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/sched_events.hpp"
#include "obs/trace.hpp"
#include "scenario/repro.hpp"
#include "scenario/scenario.hpp"
#include "sim/sim_executor.hpp"
#include "support/cancel.hpp"
#include "support/cli.hpp"
#include "support/failpoint.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

namespace {

using namespace llpmst;

/// ", N allocations (M bytes)" suffix for the Memory report line.
std::string strf_allocs(const obs::MemSample& m) {
  return ", " + format_count(m.alloc_count) + " allocations (" +
         format_count(m.alloc_bytes) + " bytes)";
}

/// "unknown --scenario 'x' (did you mean: a, b?)" — the shared shape for
/// both --scenario and --algorithm typo diagnostics.  Always exits 2.
[[noreturn]] int fail_unknown_name(const char* flag, const std::string& input,
                                   const std::vector<std::string>& candidates,
                                   const char* list_hint) {
  std::string msg = "unknown " + std::string(flag) + " '" + input + "'";
  const std::vector<std::string> near =
      CliParser::suggest_similar(input, candidates);
  if (!near.empty()) {
    msg += " (did you mean: ";
    for (std::size_t i = 0; i < near.size(); ++i) {
      if (i > 0) msg += ", ";
      msg += near[i];
    }
    msg += "?)";
  }
  std::fprintf(stderr, "%s\ntry %s for the full list\n", msg.c_str(),
               list_hint);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("mst_tool",
                "Compute the minimum spanning forest of a graph file or a "
                "generated workload");
  auto& input = cli.add_string(
      "input", "",
      "graph file (DIMACS/METIS/binary/text/llpmstb snapshot; format is "
      "sniffed from leading bytes)");
  auto& graph_format = cli.add_string(
      "graph-format", "auto",
      "input format: auto | dimacs | metis | binary | text (auto sniffs "
      "leading bytes; an explicit format that contradicts the file's magic "
      "is a usage error)");
  auto& pack_graph = cli.add_string(
      "pack-graph", "",
      "write the acquired graph (--input/--generate/--scenario) as an "
      "llpmstb CSR snapshot to this path and exit; later runs mount it "
      "via mmap with zero parse");
  auto& generate = cli.add_string(
      "generate", "road", "workload when no --input: road | rmat | er");
  auto& scale = cli.add_int("scale", 14, "generator scale (log2-ish size)");
  auto& seed = cli.add_int("seed", 1, "generator seed");
  // The option list is generated from the registry so it cannot drift from
  // what dispatch actually accepts.
  auto& algorithm = cli.add_string("algorithm", "auto",
                                   "auto | " + mst_algorithm_names());
  auto& algo_alias = cli.add_string("algo", "", "shorthand for --algorithm");
  auto& list_algos = cli.add_bool(
      "list-algos", false,
      "print the registered algorithms with their capability flags and exit");
  auto& scenario_name = cli.add_string(
      "scenario", "",
      "run a named adversarial scenario instead of --input/--generate "
      "(see --list-scenarios); arms the scenario's failpoints and deadline "
      "and checks the result against the Kruskal oracle");
  auto& list_scenarios = cli.add_bool(
      "list-scenarios", false,
      "print the scenario catalog (name, family, what it stresses) and exit");
  auto& use_sim = cli.add_bool(
      "sim", false,
      "run under the deterministic schedule simulator: worker interleaving "
      "is chosen by a PRNG seeded with --seed and recorded as a replayable "
      "schedule trace");
  auto& sim_timeline = cli.add_string(
      "sim-timeline", "",
      "scripted fault timeline for --sim, e.g. "
      "'@120:cancel, hit(llp/sweep:3):arm(boruvka/round=1*return)'");
  auto& sim_step_ns = cli.add_int(
      "sim-step-ns", 1000,
      "virtual nanoseconds the simulated clock advances per scheduling "
      "decision (--sim)");
  auto& threads = cli.add_int("threads", 4, "worker threads");
  auto& metrics_json = cli.add_string(
      "metrics-json", "", "write the JSON run report (counters, phases, "
      "algo stats) to this file");
  auto& trace_file = cli.add_string(
      "trace", "", "collect and write a Chrome/Perfetto trace-event JSON "
      "to this file (includes per-worker scheduler tracks)");
  auto& stats_out = cli.add_string(
      "stats-out", "", "write an OpenMetrics/Prometheus text exposition "
      "(counters, phases, scheduler summary) to this file");
  auto& profile_out = cli.add_string(
      "profile-out", "",
      "sample the solve with the per-thread CPU-time profiler and write "
      "folded stacks ('phase;subphase;func count' lines, flamegraph-ready; "
      "render with tools/prof2flame.py) to this file; degrades to a note "
      "when the platform cannot profile");
  auto& profile_hz = cli.add_int(
      "profile-hz", static_cast<std::int64_t>(obs::kDefaultProfileHz),
      "profiler sampling rate in samples/second of per-thread CPU time");
  auto& hw_counters = cli.add_bool(
      "hw-counters", false,
      "collect hardware counters (cycles, instructions, cache/branch "
      "misses, task-clock) around the solve via perf_event_open; prints "
      "them and adds an 'hw' section to --metrics-json (degrades to "
      "'unavailable' when the PMU or syscall is denied)");
  auto& verify = cli.add_bool("verify", false,
                              "run the exact minimality verifier (O(m*depth))");
  auto& output = cli.add_string("output", "",
                                "write chosen edges as 'u v w' lines");
  auto& failpoints = cli.add_string(
      "failpoints", "",
      "arm fault-injection points, e.g. 'llp/sweep=10%sleep(500)' "
      "(also read from $LLPMST_FAILPOINTS; no-op when compiled out)");
  auto& deadline_ms = cli.add_double(
      "deadline-ms", -1.0,
      "wall-clock budget in ms (> 0; omit for none): --algorithm auto "
      "falls back to sequential kruskal on expiry; cancellable algorithms "
      "stop early with a partial result");
  cli.parse(argc, argv);
  // 0 is rejected, not interpreted: it used to mean "no deadline" on some
  // paths, which made a literal zero-budget request indistinguishable from
  // the default.  The daemon's admission contract (docs/serving.md) needs
  // the distinction, so the CLI rejects the ambiguous spelling outright.
  if (deadline_ms == 0) {
    std::fprintf(stderr,
                 "--deadline-ms 0 is ambiguous: pass a positive budget, or "
                 "omit the flag for no deadline\n");
    return 2;
  }
  if (!algo_alias.empty()) algorithm = algo_alias;

  if (list_algos) {
    std::printf("Registered MST/MSF algorithms (%zu):\n",
                mst_algorithms().size());
    for (const MstAlgorithm& a : mst_algorithms()) {
      std::printf("  %-18s %-17s %s\n", a.name,
                  describe_caps(a.caps).c_str(), a.summary);
    }
    std::printf("\nflags: par|seq parallel, msf|tree forest-capable, "
                "det deterministic, can cancellable\n"
                "'auto' picks from this table by thread count and "
                "connectivity (see mst/auto.hpp).\n");
    return 0;
  }

  if (list_scenarios) {
    std::printf("Adversarial scenarios (%zu):\n", scenarios().size());
    for (const Scenario& s : scenarios()) {
      std::printf("  %-24s [%s] %s%s\n", s.name, s.family, s.summary,
                  *s.failpoints != '\0' ? " (arms failpoints)" : "");
    }
    std::printf("\nrun one with --scenario NAME --seed S; the result is "
                "checked against the sequential Kruskal oracle.\n");
    return 0;
  }

  // --- Resolve the scenario before anything heavy (typos fail fast with a
  // suggestion list, same contract as --algorithm below).
  const Scenario* scen = nullptr;
  if (!scenario_name.empty()) {
    scen = find_scenario(scenario_name);
    if (scen == nullptr) {
      std::vector<std::string> names;
      for (const Scenario& s : scenarios()) names.emplace_back(s.name);
      fail_unknown_name("--scenario", scenario_name, names,
                        "--list-scenarios");
    }
  }

  // The per-run context: pool (attached below), deadline, failpoint scope,
  // scratch arena, cached connectivity.
  RunContext ctx;

  // --- Fault injection (chaos/testing): CLI spec wins over the env var;
  // a scenario's own failpoints are armed alongside whatever the caller
  // asked for.
  fail::configure_from_env();
  std::string armed_failpoints = failpoints;
  if (scen != nullptr && *scen->failpoints != '\0') {
    if (!armed_failpoints.empty()) armed_failpoints += ';';
    armed_failpoints += scen->failpoints;
  }
  if (!armed_failpoints.empty()) {
    if (!fail::kCompiledIn) {
      std::fprintf(stderr,
                   "warning: --failpoints ignored (compiled out; rebuild "
                   "with -DLLPMST_FAILPOINTS=ON)\n");
    } else {
      std::string fp_error;
      ctx.arm_failpoints(armed_failpoints, &fp_error);
      if (!fp_error.empty()) {
        std::fprintf(stderr, "bad --failpoints spec: %s\n", fp_error.c_str());
        return 2;
      }
      // --seed also seeds the fault-injection RNG, so a repro command
      // replays probabilistic specs, not just count-based ones.
      fail::set_seed(static_cast<std::uint64_t>(seed));
    }
  }

  // --- Observability: flip the runtime gates before any work we want to
  // measure.  Counters are always recorded; phase timers and tracing only
  // cost anything once these are on.
  const bool want_obs =
      !metrics_json.empty() || !trace_file.empty() || !stats_out.empty();
  if (want_obs) {
    obs::set_enabled(true);
    obs::sched_start();  // per-worker event rings (no-op when compiled out)
  }
  // --profile-out needs the phase *stack* for sample attribution, but not
  // the timing aggregates — the stack-only gate keeps hot-loop PhaseTimer
  // scopes at a few relaxed stores each (full metrics subsume it).
  if (!profile_out.empty()) obs::set_phase_stack_enabled(true);
  if (!trace_file.empty()) {
    ThreadPool::set_trace_regions(true);
    obs::trace_start();
  }
  // Hardware counters open before the pool so inherited events cover the
  // workers.  Failure never fails the run — the report carries the
  // explicit "unavailable" shape instead.
  std::string hw_why;
  if (hw_counters && !obs::hw_begin(&hw_why)) {
    std::fprintf(stderr, "note: hardware counters unavailable: %s\n",
                 hw_why.c_str());
  }
  // The sampling profiler arms the main thread here; pool workers arm
  // themselves lazily on their first region.  Failure never fails the run
  // (the folded file degrades to a note, the report to the explicit
  // "unavailable" shape).
  const bool want_profile = !profile_out.empty() && obs::kCompiledIn;
  if (want_profile) {
    // Validate before the unsigned cast: a negative value would wrap to a
    // huge rate and a too-high one rounds the timer interval to 0.
    std::int64_t hz = profile_hz;
    if (hz < 1 || hz > static_cast<std::int64_t>(obs::kMaxProfileHz)) {
      std::fprintf(stderr,
                   "note: --profile-hz %lld out of range [1, %u]; using "
                   "default %u\n",
                   static_cast<long long>(hz), obs::kMaxProfileHz,
                   obs::kDefaultProfileHz);
      hz = obs::kDefaultProfileHz;
    }
    std::string prof_why;
    if (!obs::prof_start(static_cast<unsigned>(hz), &prof_why)) {
      std::fprintf(stderr, "note: profiler unavailable: %s\n",
                   prof_why.c_str());
    }
  }

  // --- Acquire the graph.
  GraphFormat format = GraphFormat::kAuto;
  if (!parse_graph_format(graph_format, format)) {
    std::fprintf(stderr,
                 "unknown --graph-format '%s' (want auto, dimacs, metis, "
                 "binary, or text)\n",
                 graph_format.c_str());
    return 2;
  }
  EdgeList list;
  CsrGraph mounted;  // set when the input is an llpmstb snapshot
  if (scen != nullptr) {
    list = scen->make(static_cast<std::uint64_t>(seed));
    std::printf("Scenario  : %s [%s] seed %lld\n", scen->name, scen->family,
                static_cast<long long>(seed));
    if (scen->deadline_ms > 0 && deadline_ms < 0) {
      deadline_ms = scen->deadline_ms;
    }
  } else if (!input.empty() &&
             (format == GraphFormat::kAuto || format == GraphFormat::kBinary) &&
             is_binary_csr_file(input)) {
    // Zero-parse path: mount the snapshot read-only.  No edge-list parse,
    // no CSR rebuild — the kernel pages arc data in on demand.
    Timer mt;
    Expected<CsrGraph> m = read_binary_csr(input);
    if (!m.ok()) {
      std::fprintf(stderr, "error mounting %s: %s\n", input.c_str(),
                   m.status().to_string().c_str());
      return 1;
    }
    mounted = std::move(*m);
    std::printf("Mounted   : %s (llpmstb snapshot, %s bytes mapped, "
                "load %s)\n",
                input.c_str(),
                format_count(mounted.storage()->mapped_bytes()).c_str(),
                format_duration_ms(mt.elapsed_ms()).c_str());
  } else if (!input.empty()) {
    Expected<EdgeList> loaded = read_graph(input, format);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                   loaded.status().to_string().c_str());
      // A format/magic contradiction is a usage error (the message names
      // the detected format), not a runtime failure.
      return loaded.status().code() == StatusCode::kInvalidArgument ? 2 : 1;
    }
    list = std::move(*loaded);
    std::printf("Loaded %s\n", input.c_str());
  } else if (generate == "road") {
    RoadParams p;
    p.width = p.height = 1u << (scale / 2);
    p.seed = static_cast<std::uint64_t>(seed);
    list = generate_road_network(p);
  } else if (generate == "rmat") {
    RmatParams p;
    p.scale = static_cast<int>(scale);
    p.seed = static_cast<std::uint64_t>(seed);
    list = generate_rmat(p);
  } else if (generate == "er") {
    ErdosRenyiParams p;
    p.num_vertices = 1u << scale;
    p.num_edges = (1ull << scale) * 8;
    p.seed = static_cast<std::uint64_t>(seed);
    list = generate_erdos_renyi(p);
  } else {
    std::fprintf(stderr, "unknown --generate '%s'\n", generate.c_str());
    return 2;
  }

  const CsrGraph g =
      mounted.storage() != nullptr ? mounted : CsrGraph::build(list);
  std::printf("Graph: %s\n", describe(compute_stats(g)).c_str());

  // --- Pack-and-exit: persist the built (or remounted) CSR as an llpmstb
  // snapshot.  No solve happens; the round-trip is the CI gate's business.
  if (!pack_graph.empty()) {
    Timer pt;
    const Status st = write_binary_csr(pack_graph, g);
    if (!st.ok()) {
      std::fprintf(stderr, "error packing %s: %s\n", pack_graph.c_str(),
                   st.to_string().c_str());
      return 1;
    }
    std::printf("Packed    : %s (%s vertices, %s edges) in %s\n",
                pack_graph.c_str(), format_count(g.num_vertices()).c_str(),
                format_count(g.num_edges()).c_str(),
                format_duration_ms(pt.elapsed_ms()).c_str());
    return 0;
  }

  // --- Solve.  Under --sim the pool is replaced by the deterministic
  // simulator: same Executor surface, PRNG-chosen interleaving, virtual
  // clock feeding the deadline, recorded schedule trace.
  ThreadPool pool(static_cast<std::size_t>(threads));
  ctx.attach_pool(pool);
  std::unique_ptr<llpmst::sim::SimExecutor> sim_exec;
  CancelToken sim_cancel;  // target of timeline `cancel` actions
  if (use_sim) {
    llpmst::sim::SimExecutor::Options so;
    so.seed = static_cast<std::uint64_t>(seed);
    so.workers = static_cast<std::size_t>(threads);
    so.step_ns = static_cast<std::uint64_t>(sim_step_ns);
    so.timeline = sim_timeline;
    sim_exec = std::make_unique<llpmst::sim::SimExecutor>(so);
    if (!sim_exec->timeline_error().empty()) {
      std::fprintf(stderr, "bad --sim-timeline: %s\n",
                   sim_exec->timeline_error().c_str());
      return 2;
    }
    sim_exec->bind_cancel(&sim_cancel);
    ctx.attach_executor(sim_exec.get());
    ctx.set_cancel(&sim_cancel);
  } else if (!sim_timeline.empty()) {
    std::fprintf(stderr, "--sim-timeline requires --sim\n");
    return 2;
  }
  if (deadline_ms > 0) ctx.set_deadline_ms(deadline_ms);
  // Resolve the algorithm before starting the clock so an unknown name
  // fails fast.  "auto" is the portfolio policy over the same registry.
  const MstAlgorithm* entry = nullptr;
  if (algorithm != "auto") {
    entry = find_mst_algorithm(algorithm);
    if (entry == nullptr) {
      std::vector<std::string> names{"auto"};
      for (const MstAlgorithm& a : mst_algorithms()) names.emplace_back(a.name);
      fail_unknown_name("--algorithm", algorithm, names, "--list-algos");
    }
  }
  // Counters up to here include graph generation/loading; re-baseline so
  // the reported hw section covers the solve alone.
  const obs::HwSample hw_before =
      obs::hw_active() ? obs::hw_read() : obs::HwSample{};
  Timer t;
  MstResult result;
  std::string used = algorithm;
  std::string fallback_reason;
  {
    [[maybe_unused]] auto solve_scope = ctx.obs_scope("mst_tool/solve");
    if (entry == nullptr) {
      AutoMstResult r = minimum_spanning_forest(g, ctx);
      result = std::move(r.result);
      used = "auto -> " + r.algorithm;
      if (r.fell_back) {
        fallback_reason = r.fallback_reason;
        std::printf("FALLBACK  : parallel run failed (%s); recomputed with "
                    "sequential kruskal\n",
                    r.fallback_reason.c_str());
      }
    } else {
      result = entry->run(g, ctx);
    }
  }
  const double solve_ms = t.elapsed_ms();
  // Stop the scheduler rings at the join, then fold the worker timelines
  // into the trace (pid-1 tracks) before the trace itself closes — neither
  // should cover the verifier below.  The profiler stops on the same
  // boundary: its samples attribute the solve, not the verifier.
  obs::sched_stop();
  if (want_profile) obs::prof_stop();
  const obs::ProfSnapshot prof =
      want_profile ? obs::prof_snapshot() : obs::ProfSnapshot{};
  if (!trace_file.empty()) {
    obs::export_sched_to_trace();
    obs::trace_stop();
  }

  // Solve-scoped hardware-counter delta (kept "unavailable" when denied).
  obs::HwSample hw_sample;
  if (hw_counters) {
    hw_sample = obs::hw_read();
    if (hw_sample.available && hw_before.available) {
      const auto sub = [](std::uint64_t a, std::uint64_t b) {
        return (a == obs::kHwAbsent || b == obs::kHwAbsent || a < b)
                   ? obs::kHwAbsent
                   : a - b;
      };
      hw_sample.cycles = sub(hw_sample.cycles, hw_before.cycles);
      hw_sample.instructions =
          sub(hw_sample.instructions, hw_before.instructions);
      hw_sample.cache_references =
          sub(hw_sample.cache_references, hw_before.cache_references);
      hw_sample.cache_misses =
          sub(hw_sample.cache_misses, hw_before.cache_misses);
      hw_sample.branch_misses =
          sub(hw_sample.branch_misses, hw_before.branch_misses);
      if (hw_sample.task_clock_ms >= 0 && hw_before.task_clock_ms >= 0) {
        hw_sample.task_clock_ms -= hw_before.task_clock_ms;
      }
    }
  }

  std::printf("\nAlgorithm : %s (%lld threads)\n", used.c_str(),
              static_cast<long long>(threads));
  std::printf("Time      : %s\n", format_duration_ms(solve_ms).c_str());
  if (hw_counters) {
    if (hw_sample.available) {
      const auto cell = [](std::uint64_t v) {
        return v == obs::kHwAbsent ? std::string("n/a") : format_count(v);
      };
      std::printf("HW        : %s cycles, %s instructions, %s cache misses "
                  "/ %s refs, %s branch misses\n",
                  cell(hw_sample.cycles).c_str(),
                  cell(hw_sample.instructions).c_str(),
                  cell(hw_sample.cache_misses).c_str(),
                  cell(hw_sample.cache_references).c_str(),
                  cell(hw_sample.branch_misses).c_str());
    } else {
      std::printf("HW        : unavailable (%s)\n",
                  hw_sample.unavailable_reason.c_str());
    }
  }
  const obs::MemSample mem = obs::mem_sample();
  std::printf("Memory    : peak RSS %s bytes%s\n",
              format_count(mem.peak_rss_bytes).c_str(),
              mem.alloc_tracking
                  ? strf_allocs(mem).c_str()
                  : "");
  std::printf("MSF       : %s edges, %s trees, total weight %s\n",
              format_count(result.edges.size()).c_str(),
              format_count(result.num_trees).c_str(),
              format_count(result.total_weight).c_str());
  if (result.stats.outcome != RunOutcome::kOk) {
    std::printf("WARNING   : run stopped early (%s); the result may be "
                "partial\n",
                run_outcome_name(result.stats.outcome));
  } else if (!result.stats.llp_converged) {
    std::printf("WARNING   : LLP sweep cap hit before convergence; the "
                "result may be partial\n");
  }
  if (sim_exec != nullptr) {
    std::printf("Schedule  : %llu decisions%s\n    trace: %s\n",
                static_cast<unsigned long long>(sim_exec->decisions()),
                sim_exec->replay_diverged() ? " (REPLAY DIVERGED)" : "",
                sim_exec->trace().encode().c_str());
  }

  // --- Scenario conformance: every complete run must match the Kruskal
  // oracle bit-for-bit.  A failure prints the one-line repro command.
  if (scen != nullptr && result.stats.outcome == RunOutcome::kOk) {
    const std::string violation = check_scenario_result(*scen, g, result);
    if (!violation.empty()) {
      ReproSpec rs;
      rs.scenario = scen->name;
      rs.algo = algorithm;
      rs.seed = static_cast<std::uint64_t>(seed);
      rs.threads = static_cast<std::size_t>(threads);
      rs.failpoints = failpoints;
      rs.timeline = sim_timeline;
      rs.deadline_ms = deadline_ms;
      rs.sim = use_sim;
      std::fprintf(stderr, "SCENARIO CHECK FAILED: %s\n%s\n",
                   violation.c_str(), format_repro_command(rs).c_str());
      return 1;
    }
    std::printf("Scenario  : conformant with the Kruskal oracle\n");
  }

  // --- Verify.  The ctx overloads cross-check against (and seed) the
  // context's cached component count, so an auto run's connectivity check
  // is not repeated here.
  const VerifyResult shape = verify_spanning_forest(g, result, ctx);
  if (!shape.ok) {
    std::fprintf(stderr, "SPANNING CHECK FAILED: %s\n", shape.error.c_str());
    return 1;
  }
  if (verify) {
    Timer vt;
    const VerifyResult full = verify_msf(g, result, ctx);
    if (!full.ok) {
      std::fprintf(stderr, "MINIMALITY CHECK FAILED: %s\n",
                   full.error.c_str());
      return 1;
    }
    std::printf("Verified  : exact minimality certificate in %s\n",
                format_duration_ms(vt.elapsed_ms()).c_str());
  } else {
    std::printf("Verified  : spanning-forest shape (pass --verify for the "
                "exact minimality certificate)\n");
  }

  // --- Persist.
  if (!output.empty()) {
    EdgeList tree(g.num_vertices());
    for (const EdgeId e : result.edges) {
      const WeightedEdge& we = g.edge(e);
      tree.add_edge(we.u, we.v, we.w);
    }
    const Status st = write_edge_list_text(output, tree);
    if (!st.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", output.c_str(),
                   st.to_string().c_str());
      return 1;
    }
    std::printf("Wrote     : %s\n", output.c_str());
  }

  // --- Observability artefacts.
  if (!metrics_json.empty() && !obs::kCompiledIn) {
    // Clear notice instead of a silently empty report: the run report's
    // counters/phases/rounds only exist in the instrumented build.
    std::printf("Metrics   : observability compiled out (LLPMST_OBS=0); no "
                "report written — rebuild with -DLLPMST_OBS=ON\n");
  } else if (!metrics_json.empty()) {
    obs::RunInfo info;
    info.tool = "mst_tool";
    info.algorithm = used;
    info.threads = static_cast<std::size_t>(threads);
    info.vertices = g.num_vertices();
    info.edges = g.num_edges();
    info.wall_ms = solve_ms;
    info.outcome = fallback_reason.empty()
                       ? run_outcome_name(result.stats.outcome)
                       : "fallback";
    info.fallback_reason = fallback_reason;
    std::string err;
    if (!obs::write_run_report(
            metrics_json,
            obs::build_run_report(info, &result.stats,
                                  hw_counters ? &hw_sample : nullptr,
                                  want_profile ? &prof : nullptr),
            &err)) {
      std::fprintf(stderr, "error writing %s: %s\n", metrics_json.c_str(),
                   err.c_str());
      return 1;
    }
    std::printf("Metrics   : %s\n", metrics_json.c_str());
  }
  if (!trace_file.empty()) {
    std::string err;
    if (!obs::write_trace_json(trace_file, &err)) {
      std::fprintf(stderr, "error writing %s: %s\n", trace_file.c_str(),
                   err.c_str());
      return 1;
    }
    std::printf("Trace     : %s (%zu events)\n", trace_file.c_str(),
                obs::trace_event_count());
  }
  if (!profile_out.empty() && !obs::kCompiledIn) {
    // Clear one-line notice instead of an empty file (CI asserts this).
    std::printf("Profile   : observability compiled out (LLPMST_OBS=0); no "
                "folded output written — rebuild with -DLLPMST_OBS=ON\n");
  } else if (!profile_out.empty()) {
    if (!prof.available) {
      std::printf("Profile   : unavailable (%s); no folded output written\n",
                  prof.unavailable_reason.c_str());
    } else {
      const std::string folded = obs::prof_render_folded(prof);
      std::FILE* f = std::fopen(profile_out.c_str(), "w");
      const bool ok =
          f != nullptr &&
          std::fwrite(folded.data(), 1, folded.size(), f) == folded.size();
      if (f != nullptr) std::fclose(f);
      if (!ok) {
        std::fprintf(stderr, "error writing %s\n", profile_out.c_str());
        return 1;
      }
      std::printf("Profile   : %s (%llu samples, %zu stacks, %u Hz%s)\n",
                  profile_out.c_str(),
                  static_cast<unsigned long long>(prof.samples),
                  prof.stacks.size(), prof.hz,
                  prof.dropped != 0 ? ", ring overflowed" : "");
    }
  }
  if (!stats_out.empty()) {
    // Unlike --metrics-json, the exposition is written in BOTH build
    // flavours: an LLPMST_OBS=0 build emits a minimal-but-valid document
    // (build_info + EOF) so scrapers never branch on the flavour.
    std::string err;
    if (!obs::write_openmetrics(stats_out, &err)) {
      std::fprintf(stderr, "error writing %s: %s\n", stats_out.c_str(),
                   err.c_str());
      return 1;
    }
    std::printf("Stats     : %s\n", stats_out.c_str());
  }
  if (hw_counters) obs::hw_end();
  return 0;
}
