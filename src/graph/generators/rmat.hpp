// RMAT / Kronecker graph generator with graph500 parameters.
//
// Reproduces the paper's "graph500-s25-ef16" workload family (Table I) at
// configurable scale: 2^scale vertices, edgefactor * 2^scale generated edge
// tuples placed by recursive quadrant descent with the graph500 probabilities
// A=0.57, B=0.19, C=0.19, D=0.05.  As in graph500, vertex ids are randomly
// permuted afterwards so locality does not leak the recursion structure.
// Self-loops and duplicates are removed by normalization, so the final edge
// count is slightly below edgefactor * 2^scale; the graph is generally NOT
// connected (LLP-Boruvka handles the forest; connect_components() can patch
// it for the Prim-family benchmarks, as the paper's Prim experiments assume
// a connected graph).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace llpmst {

struct RmatParams {
  int scale = 16;           // log2(#vertices)
  int edge_factor = 16;     // edges per vertex (before dedup)
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  Weight max_weight = 1u << 24;         // weights uniform in [1, max_weight]
  std::uint64_t seed = 1;
  bool permute_vertices = true;
};

/// Generates a normalized RMAT edge list.
[[nodiscard]] EdgeList generate_rmat(const RmatParams& params);

/// Adds the minimum number of edges (heavy, weight = max existing + spread)
/// to make the graph connected, preserving the MSF of the existing part on
/// all original components.  Used by Prim-family benchmarks, which require a
/// connected input.  Returns the number of edges added.
std::size_t connect_components(EdgeList& list, std::uint64_t seed = 7);

}  // namespace llpmst
