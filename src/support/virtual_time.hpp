// Installable virtual clock for deterministic simulation.
//
// CancelToken deadlines, GrainFeedback measurements, and the Boruvka
// utilization probe all read the steady clock.  Under the deterministic
// scheduler (SimExecutor) those reads must come from a *virtual* clock the
// simulator advances, or every run would take schedule-affecting decisions
// from real time and traces would never replay.  vtime::steady_now_ns() is
// the single indirection point: it returns real steady-clock nanoseconds
// until a VirtualClock is installed, after which it returns the clock's
// counter.
//
// The install is process-global (one simulator at a time — SimExecutor is
// not reentrant anyway) and the counter is atomic, so virtual workers can
// read time while the scheduler advances it.  The epoch starts at 1s rather
// than 0 because CancelToken encodes "no deadline" as deadline_ns_ == 0: a
// zero-ms deadline armed at virtual time 0 would otherwise disarm itself.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace llpmst::vtime {

class VirtualClock {
 public:
  /// Virtual epoch base.  Nonzero so a deadline armed "0 ms from now" never
  /// collides with CancelToken's 0 == "no deadline" encoding.
  static constexpr std::uint64_t kEpochNs = 1'000'000'000;

  [[nodiscard]] std::uint64_t now_ns() const {
    return now_ns_.load(std::memory_order_relaxed);
  }

  void advance_ns(std::uint64_t delta) {
    now_ns_.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_ns_{kEpochNs};
};

namespace detail {
extern std::atomic<VirtualClock*> g_clock;
}

/// Installs `clock` as the process-wide time source (nullptr restores real
/// time).  Returns the previously installed clock.  Callers pair install /
/// restore RAII-style (SimExecutor does this in ctor/dtor).
VirtualClock* install_clock(VirtualClock* clock);

/// The currently installed virtual clock, or nullptr when running on real
/// time.
[[nodiscard]] inline VirtualClock* installed_clock() {
  return detail::g_clock.load(std::memory_order_acquire);
}

/// Steady-clock "now" in ns: virtual when a clock is installed, real
/// otherwise.  This is the only clock the cancellation and grain-feedback
/// paths may read.
[[nodiscard]] inline std::uint64_t steady_now_ns() {
  if (VirtualClock* c = installed_clock(); c != nullptr) return c->now_ns();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace llpmst::vtime
