#include "graph/io/read_graph.hpp"

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "graph/io/binary_csr.hpp"
#include "graph/io/dimacs.hpp"
#include "graph/io/edge_list_io.hpp"
#include "graph/io/metis.hpp"

namespace llpmst {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

GraphFormat format_from_extension(const std::string& path) {
  if (ends_with(path, ".gr")) return GraphFormat::kDimacs;
  if (ends_with(path, ".metis") || ends_with(path, ".graph")) {
    return GraphFormat::kMetis;
  }
  if (ends_with(path, ".bin") || ends_with(path, ".llpmstb")) {
    return GraphFormat::kBinary;
  }
  return GraphFormat::kText;
}

constexpr char kLegacyBinaryMagic[4] = {'L', 'L', 'P', 'M'};

/// What the leading bytes say the file is.  kAuto means "ambiguous text" —
/// plain "u v w" lines and a METIS header are both whitespace-separated
/// integers, so only the extension can break that tie.
GraphFormat sniff_format(const char* head, std::size_t len) {
  if (sniff_binary_csr(head, len)) return GraphFormat::kBinary;
  if (len >= sizeof kLegacyBinaryMagic &&
      std::memcmp(head, kLegacyBinaryMagic, sizeof kLegacyBinaryMagic) == 0) {
    return GraphFormat::kBinary;
  }
  // Scan text lines.  DIMACS files open with 'c' comments or the "p sp n m"
  // problem line; METIS files may open with '%' comments.  A bare integer
  // line is ambiguous (METIS header vs text edge) — report kAuto.
  std::size_t i = 0;
  while (i < len) {
    while (i < len && (head[i] == ' ' || head[i] == '\t')) ++i;
    if (i >= len) break;
    const char c = head[i];
    if (c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    if (c == 'c' || c == 'p') return GraphFormat::kDimacs;
    if (c == '%') return GraphFormat::kMetis;
    if (c == '#') return GraphFormat::kText;  // text reader's comment char
    return GraphFormat::kAuto;  // integer data: METIS or text, can't tell
  }
  return GraphFormat::kAuto;  // empty / all-blank head
}

/// Reads up to 256 leading bytes; returns false if the file can't be opened
/// (detection then falls back to the extension and the reader reports the
/// real open error with its usual Status).
bool read_head(const std::string& path, char* head, std::size_t& len) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  len = std::fread(head, 1, 256, f);
  std::fclose(f);
  return true;
}

/// The parse path for an llpmstb snapshot: mount it (with the full payload
/// checksum, since this path reads every byte anyway) and materialize the
/// edge section as an EdgeList.
Expected<EdgeList> snapshot_to_edge_list(const std::string& path) {
  BinaryCsrOptions opts;
  opts.verify_payload = true;
  Expected<CsrGraph> g = read_binary_csr(path, opts);
  if (!g.ok()) return g.status();
  const std::size_t n = g->num_vertices();
  std::vector<WeightedEdge> edges(g->edges().begin(), g->edges().end());
  for (const WeightedEdge& e : edges) {
    if (e.u >= n || e.v >= n) {
      return Status{StatusCode::kCorruptInput,
                    "'" + path + "': edge endpoint out of range"};
    }
  }
  EdgeList list(n, std::move(edges));
  // Snapshots are packed from normalized lists; re-normalize only if a
  // crafted file broke that, so the common path stays a straight copy.
  if (!list.is_normalized()) list.normalize();
  return list;
}

}  // namespace

const char* graph_format_name(GraphFormat f) {
  switch (f) {
    case GraphFormat::kAuto: return "auto";
    case GraphFormat::kDimacs: return "dimacs";
    case GraphFormat::kMetis: return "metis";
    case GraphFormat::kBinary: return "binary";
    case GraphFormat::kText: return "text";
  }
  return "unknown";
}

bool parse_graph_format(const std::string& name, GraphFormat& out) {
  if (name == "auto") out = GraphFormat::kAuto;
  else if (name == "dimacs") out = GraphFormat::kDimacs;
  else if (name == "metis") out = GraphFormat::kMetis;
  else if (name == "binary") out = GraphFormat::kBinary;
  else if (name == "text") out = GraphFormat::kText;
  else return false;
  return true;
}

GraphFormat detect_graph_format(const std::string& path) {
  char head[256];
  std::size_t len = 0;
  if (read_head(path, head, len)) {
    const GraphFormat sniffed = sniff_format(head, len);
    if (sniffed != GraphFormat::kAuto) return sniffed;
  }
  return format_from_extension(path);
}

Expected<EdgeList> read_graph(const std::string& path, GraphFormat format) {
  char head[256];
  std::size_t head_len = 0;
  const bool have_head = read_head(path, head, head_len);
  const GraphFormat sniffed =
      have_head ? sniff_format(head, head_len) : GraphFormat::kAuto;

  if (format == GraphFormat::kAuto) {
    format = sniffed != GraphFormat::kAuto ? sniffed
                                           : format_from_extension(path);
  } else if (have_head && sniffed == GraphFormat::kBinary &&
             format != GraphFormat::kBinary) {
    // Magic bytes are authoritative: parsing a binary file as text is never
    // what the user meant, so name the detected format instead of emitting
    // a confusing parse error.
    return Status{StatusCode::kInvalidArgument,
                  "'" + path + "' is a " +
                      (sniff_binary_csr(head, head_len)
                           ? std::string("llpmstb CSR snapshot")
                           : std::string("llpmst binary edge list")) +
                      " (detected format: binary) but --graph-format says " +
                      graph_format_name(format)};
  } else if (have_head && format == GraphFormat::kBinary &&
             sniffed != GraphFormat::kBinary) {
    return Status{StatusCode::kInvalidArgument,
                  "'" + path + "' has no binary magic (detected format: " +
                      graph_format_name(sniffed == GraphFormat::kAuto
                                            ? format_from_extension(path)
                                            : sniffed) +
                      ") but --graph-format says binary"};
  }

  switch (format) {
    case GraphFormat::kDimacs: {
      DimacsResult r = read_dimacs(path);
      if (!r.ok()) return r.status;
      return std::move(r.graph);
    }
    case GraphFormat::kMetis: {
      EdgeListResult r = read_metis(path);
      if (!r.ok()) return r.status;
      return std::move(r.graph);
    }
    case GraphFormat::kBinary: {
      if (have_head && sniff_binary_csr(head, head_len)) {
        return snapshot_to_edge_list(path);
      }
      EdgeListResult r = read_edge_list_binary(path);
      if (!r.ok()) return r.status;
      return std::move(r.graph);
    }
    case GraphFormat::kText:
    case GraphFormat::kAuto: {
      EdgeListResult r = read_edge_list_text(path);
      if (!r.ok()) return r.status;
      return std::move(r.graph);
    }
  }
  return Status{StatusCode::kInvalidArgument, "unknown graph format"};
}

}  // namespace llpmst
