#!/usr/bin/env bash
# Regenerates every paper figure/table, writing both the human-readable log
# and per-figure CSVs (for re-plotting) under results/.
#
#   tools/run_benchmarks.sh [build-dir] [results-dir]
#
# Any failing benchmark aborts the whole run with a non-zero exit (set -e +
# pipefail, so a crash upstream of `tee` is not swallowed) and names the
# command that failed — partial results/ contents are left in place for
# inspection.
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"

trap 'echo "error: benchmark run failed at: $BASH_COMMAND" >&2' ERR

if [[ ! -d "$BUILD/bench" ]]; then
  echo "error: $BUILD/bench not found — build with -DLLPMST_BUILD_BENCHMARKS=ON first" >&2
  exit 1
fi
mkdir -p "$OUT"

run() {
  local name="$1"; shift
  echo "=== $name ==="
  # The metrics run report (counters, phase timings) lands next to the
  # human-readable log; tools/trace2summary.py and CI consume it.
  "$BUILD/bench/$name" "$@" --metrics-json "$OUT/$name.metrics.json" \
    | tee "$OUT/$name.txt"
  "$BUILD/bench/$name" "$@" --csv > "$OUT/$name.csv"
}

run bench_table1_datasets
run bench_fig2_single_thread
run bench_fig3_scaling
run bench_fig4_graph_types
run bench_size_sweep
run bench_ablation_llp_prim
run bench_ablation_llp_boruvka
run bench_heap_choice
run bench_sequential_baselines
run bench_llp_transfer

"$BUILD/bench/micro_ds"       | tee "$OUT/micro_ds.txt"
"$BUILD/bench/micro_parallel" | tee "$OUT/micro_parallel.txt"

# Every emitted run report must satisfy the documented schema; a drift here
# should fail the nightly, not silently break downstream plotting.
if command -v python3 > /dev/null; then
  python3 "$(dirname "$0")/check_report_schema.py" "$OUT"/*.metrics.json
fi

echo "All outputs in $OUT/"
