// Adversarial scenario suite: registry invariants, registry-wide
// conformance against the sequential Kruskal oracle, and the bundle-dedup
// probe-cap regression the bundle-heavy generator exists to pin.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/run_context.hpp"
#include "graph/csr_graph.hpp"
#include "mst/kruskal.hpp"
#include "mst/registry.hpp"
#include "scenario/adversarial.hpp"
#include "scenario/repro.hpp"
#include "scenario/scenario.hpp"
#include "support/cli.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

// ----------------------------------------------------- registry invariants

TEST(ScenarioRegistry, NamesAreUniqueNonEmptyAndKebabCase) {
  ASSERT_GE(scenarios().size(), 12u);
  std::set<std::string> seen;
  for (const Scenario& s : scenarios()) {
    ASSERT_NE(s.name, nullptr);
    ASSERT_NE(*s.name, '\0');
    EXPECT_TRUE(seen.insert(s.name).second) << "duplicate name " << s.name;
    for (const char* p = s.name; *p != '\0'; ++p) {
      EXPECT_TRUE((*p >= 'a' && *p <= 'z') || (*p >= '0' && *p <= '9') ||
                  *p == '-')
          << s.name;
    }
    EXPECT_NE(*s.summary, '\0') << s.name;
    EXPECT_NE(*s.family, '\0') << s.name;
    EXPECT_NE(s.make, nullptr) << s.name;
  }
}

TEST(ScenarioRegistry, LookupAndNameListAgree) {
  for (const Scenario& s : scenarios()) {
    EXPECT_EQ(find_scenario(s.name), &s);
    EXPECT_NE(scenario_names().find(s.name), std::string::npos);
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
  EXPECT_EQ(find_scenario(""), nullptr);
}

TEST(ScenarioRegistry, GeneratorsAreDeterministicInSeed) {
  for (const Scenario& s : scenarios()) {
    const EdgeList a = s.make(3);
    const EdgeList b = s.make(3);
    ASSERT_EQ(a.num_vertices(), b.num_vertices()) << s.name;
    ASSERT_EQ(a.num_edges(), b.num_edges()) << s.name;
    for (std::size_t i = 0; i < a.num_edges(); ++i) {
      const WeightedEdge& ea = a.edges()[i];
      const WeightedEdge& eb = b.edges()[i];
      ASSERT_TRUE(ea.u == eb.u && ea.v == eb.v && ea.w == eb.w)
          << s.name << " edge " << i;
    }
  }
}

TEST(ScenarioRegistry, StructuralExpectationsHold) {
  for (const Scenario& s : scenarios()) {
    const CsrGraph g = csr(s.make(1));
    RunContext ctx;
    const std::size_t components = ctx.num_components(g);
    if (s.expect.connected) {
      EXPECT_EQ(components, 1u) << s.name;
    }
    EXPECT_GE(components, s.expect.min_components) << s.name;
  }
}

// ------------------------------------------------- registry-wide conformance

// Every scenario graph, solved by a representative parallel algorithm from
// each family, must reproduce the Kruskal oracle bit for bit.  (The full
// algorithm-by-algorithm sweep lives in test_registry_conformance; this one
// pins the adversarial INPUTS.)
TEST(ScenarioConformance, AllScenariosMatchKruskalAcrossAlgorithms) {
  const char* algos[] = {"llp-boruvka", "parallel-boruvka", "filter-kruskal"};
  ThreadPool pool(4);
  for (const Scenario& s : scenarios()) {
    const CsrGraph g = csr(s.make(1));
    for (const char* name : algos) {
      const MstAlgorithm* algo = find_mst_algorithm(name);
      ASSERT_NE(algo, nullptr) << name;
      if (s.expect.min_components > 1 && !algo->caps.msf_capable) continue;
      RunContext ctx(pool);
      const MstResult r = algo->run(g, ctx);
      const std::string violation = check_scenario_result(s, g, r);
      ReproSpec rs;
      rs.scenario = s.name;
      rs.algo = name;
      rs.seed = 1;
      rs.threads = 4;
      EXPECT_EQ(violation, "") << format_repro_command(rs);
    }
  }
}

TEST(ScenarioConformance, CheckerRejectsACorruptedForest) {
  const Scenario* s = find_scenario("road-baseline");
  ASSERT_NE(s, nullptr);
  const CsrGraph g = csr(s->make(1));
  MstResult r = kruskal(g);
  ASSERT_EQ(check_scenario_result(*s, g, r), "");
  // Swap one chosen edge for a non-tree edge: weight changes, checker fires.
  r.total_weight += 1;
  EXPECT_NE(check_scenario_result(*s, g, r), "");
}

// --------------------------------------------- bundle-dedup cap regression

// The PR 4 contraction dedup bounds its hash-probe chain (kMaxProbes) and
// falls back to keeping duplicates when a bundle blows the cap — correctness
// must not depend on dedup succeeding.  The bundle generators exist to force
// that overflow; 20 seeds of both widths must stay bit-identical to Kruskal
// through the engine that owns the cap.
TEST(BundleDedupRegression, ProbeCapOverflowStaysExactAcrossTwentySeeds) {
  const char* algos[] = {"parallel-boruvka", "llp-boruvka"};
  ThreadPool pool(4);
  for (const char* scen_name : {"bundle-heavy", "bundle-storm"}) {
    const Scenario* s = find_scenario(scen_name);
    ASSERT_NE(s, nullptr);
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const CsrGraph g = csr(s->make(seed));
      const MstResult reference = kruskal(g);
      for (const char* name : algos) {
        RunContext ctx(pool);
        const MstResult r = mst_algorithm(name).run(g, ctx);
        ReproSpec rs;
        rs.scenario = scen_name;
        rs.algo = name;
        rs.seed = seed;
        rs.threads = 4;
        ASSERT_EQ(r.edges, reference.edges) << format_repro_command(rs);
        ASSERT_EQ(r.total_weight, reference.total_weight)
            << format_repro_command(rs);
      }
    }
  }
}

TEST(BundleDedupRegression, BundleWidthsActuallyExceedTheProbeCap) {
  // Guard the generator against silently shrinking below the cap it is
  // meant to stress: bundle-storm must produce super-pairs with well over
  // 64 parallel edges after round-1 contraction (cluster = s vertices).
  BundleHeavyParams p;
  p.clusters = 12;
  p.cluster_size = 16;
  p.bundle_width = 160;
  p.seed = 1;
  const EdgeList list = make_bundle_heavy(p);
  // Count inter-cluster edges between cluster 0 and 1 (vertex / 16 gives
  // the cluster id).
  std::size_t bundle01 = 0;
  for (const WeightedEdge& e : list.edges()) {
    if (e.u / 16 == 0 && e.v / 16 == 1) ++bundle01;
  }
  EXPECT_GE(bundle01, 100u);
}

// ------------------------------------------------------- typo suggestions

TEST(SuggestSimilar, RanksCloseNamesFirst) {
  std::vector<std::string> names;
  for (const Scenario& s : scenarios()) names.emplace_back(s.name);
  const auto near = CliParser::suggest_similar("bundle-havy", names);
  ASSERT_FALSE(near.empty());
  EXPECT_EQ(near.front(), "bundle-heavy");
}

TEST(SuggestSimilar, SubstringMatchesBeatEditDistance) {
  const std::vector<std::string> names = {"rmat-skew-mild", "rmat-graph500",
                                          "road-baseline"};
  const auto near = CliParser::suggest_similar("rmat", names);
  ASSERT_GE(near.size(), 2u);
  EXPECT_TRUE(near[0].rfind("rmat", 0) == 0);
  EXPECT_TRUE(near[1].rfind("rmat", 0) == 0);
}

TEST(SuggestSimilar, FarNamesProduceNoNoise) {
  const std::vector<std::string> names = {"bundle-heavy", "forest-dust"};
  EXPECT_TRUE(CliParser::suggest_similar("zzzzzzzzzzzz", names).empty());
}

TEST(SuggestSimilar, CapsTheNumberOfSuggestions) {
  const std::vector<std::string> names = {"aaa1", "aaa2", "aaa3", "aaa4",
                                          "aaa5"};
  EXPECT_LE(CliParser::suggest_similar("aaa", names, 3).size(), 3u);
}

// ------------------------------------------------------- repro formatting

TEST(ReproCommand, FormatsAllFieldsOnOneLine) {
  ReproSpec rs;
  rs.scenario = "bundle-heavy";
  rs.algo = "llp-boruvka";
  rs.seed = 17;
  rs.threads = 4;
  rs.failpoints = "llp/sweep=1*return";
  rs.sim = true;
  rs.timeline = "@40: cancel";
  const std::string cmd = format_repro_command(rs);
  EXPECT_EQ(cmd.find('\n'), std::string::npos);
  EXPECT_NE(cmd.find("mst_tool"), std::string::npos);
  EXPECT_NE(cmd.find("--scenario bundle-heavy"), std::string::npos);
  EXPECT_NE(cmd.find("--seed 17"), std::string::npos);
  EXPECT_NE(cmd.find("--algo llp-boruvka"), std::string::npos);
  EXPECT_NE(cmd.find("--threads 4"), std::string::npos);
  EXPECT_NE(cmd.find("--sim"), std::string::npos);
  EXPECT_NE(cmd.find("--failpoints 'llp/sweep=1*return'"), std::string::npos);
  EXPECT_NE(cmd.find("--sim-timeline '@40: cancel'"), std::string::npos);
}

TEST(ReproCommand, OmitsUnsetFields) {
  ReproSpec rs;
  rs.seed = 2;
  const std::string cmd = format_repro_command(rs);
  EXPECT_EQ(cmd.find("--scenario"), std::string::npos);
  EXPECT_EQ(cmd.find("--algo"), std::string::npos);
  EXPECT_EQ(cmd.find("--failpoints"), std::string::npos);
  EXPECT_EQ(cmd.find("--sim"), std::string::npos);
  EXPECT_NE(cmd.find("--seed 2"), std::string::npos);
}

}  // namespace
}  // namespace llpmst
