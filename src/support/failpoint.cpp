#include "support/failpoint.hpp"

#if LLPMST_FAILPOINTS

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "support/random.hpp"
#include "support/sim_hooks.hpp"

namespace llpmst::fail {

namespace {

enum class Task : std::uint8_t { kReturn, kAlloc, kSleep, kYield };

/// One registry entry.  Entries are never erased — disarming just clears
/// `armed` — so the pointer a hit resolves under the registry mutex stays
/// valid while the atomics are updated lock-free afterwards.  (The map is
/// bounded by the number of distinct failpoint names, a small constant.)
struct Point {
  bool armed = false;
  Task task = Task::kYield;
  std::uint64_t arg = 0;                 // sleep microseconds
  std::uint32_t prob_permille = 1000;    // fire probability, out of 1000
  std::atomic<std::int64_t> remaining{-1};  // fires left; -1 = unlimited
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Point> points;
  std::atomic<std::uint64_t> seed{0x5eedf01d};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

/// Deterministic per-thread RNG for probabilistic specs; reseeded lazily
/// when set_seed() bumps the epoch so chaos iterations replay.
std::uint64_t next_rand() {
  static std::atomic<std::uint64_t> thread_counter{0};
  struct TlsRng {
    std::uint64_t epoch = ~0ull;
    std::uint64_t id = thread_counter.fetch_add(1);
    Xoshiro256 rng{0};
  };
  thread_local TlsRng tls;
  const std::uint64_t epoch =
      registry().seed.load(std::memory_order_relaxed);
  if (tls.epoch != epoch) {
    tls.epoch = epoch;
    tls.rng = Xoshiro256(SplitMix64::mix(epoch) ^ SplitMix64::mix(tls.id + 1));
  }
  return tls.rng.next();
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

/// Parses "[<prob>%][<count>*]<task>[(<arg>)]" into `p`.  Returns false on
/// any malformed component.  "off" is handled by the caller.
bool parse_spec(std::string_view spec, Point& p) {
  // Optional probability prefix.
  if (const auto pct = spec.find('%'); pct != std::string_view::npos) {
    std::uint64_t prob = 0;
    if (!parse_u64(spec.substr(0, pct), prob) || prob > 100) return false;
    p.prob_permille = static_cast<std::uint32_t>(prob * 10);
    spec.remove_prefix(pct + 1);
  }
  // Optional max-fire-count prefix.
  if (const auto star = spec.find('*'); star != std::string_view::npos) {
    std::uint64_t count = 0;
    if (!parse_u64(spec.substr(0, star), count) || count == 0) return false;
    p.remaining.store(static_cast<std::int64_t>(count),
                      std::memory_order_relaxed);
    spec.remove_prefix(star + 1);
  }
  // Task, with optional parenthesized argument.
  std::string_view arg;
  if (const auto open = spec.find('('); open != std::string_view::npos) {
    if (spec.back() != ')') return false;
    arg = spec.substr(open + 1, spec.size() - open - 2);
    spec = spec.substr(0, open);
  }
  if (spec == "return") {
    p.task = Task::kReturn;
    return arg.empty();
  }
  if (spec == "alloc") {
    p.task = Task::kAlloc;
    return arg.empty();
  }
  if (spec == "yield") {
    p.task = Task::kYield;
    return arg.empty();
  }
  if (spec == "sleep") {
    p.task = Task::kSleep;
    // Cap at one second: a typo must perturb, not wedge, a chaos run.
    return parse_u64(arg, p.arg) && p.arg <= 1'000'000;
  }
  return false;
}

}  // namespace

namespace detail {

std::atomic<int> g_armed_count{0};

Action evaluate(const char* name) {
  Registry& reg = registry();
  Point* p = nullptr;
  {
    std::lock_guard lock(reg.mutex);
    const auto it = reg.points.find(name);
    if (it == reg.points.end() || !it->second.armed) return Action::kNone;
    p = &it->second;
  }
  p->hits.fetch_add(1, std::memory_order_relaxed);

  if (p->prob_permille < 1000 &&
      next_rand() % 1000 >= p->prob_permille) {
    return Action::kNone;
  }
  // Budgeted points: claim one fire; losers (and exhausted points) pass.
  for (;;) {
    std::int64_t left = p->remaining.load(std::memory_order_relaxed);
    if (left < 0) break;  // unlimited
    if (left == 0) return Action::kNone;
    if (p->remaining.compare_exchange_weak(left, left - 1,
                                           std::memory_order_relaxed)) {
      break;
    }
  }
  p->fires.fetch_add(1, std::memory_order_relaxed);

  switch (p->task) {
    case Task::kReturn:
      return Action::kError;
    case Task::kAlloc:
      return Action::kAlloc;
    case Task::kYield:
      // Under the deterministic simulator a yield becomes a scheduling
      // decision; a real yield would be invisible (only one virtual worker
      // runs at a time).
      if (simhook::active()) {
        simhook::preempt();
      } else {
        std::this_thread::yield();
      }
      return Action::kNone;
    case Task::kSleep:
      // Virtual sleep advances the simulated clock instead of stalling the
      // (serialized) simulation in real time.
      if (!simhook::virtual_sleep_ns(p->arg * 1000)) {
        std::this_thread::sleep_for(std::chrono::microseconds(p->arg));
      }
      return Action::kNone;
  }
  return Action::kNone;
}

}  // namespace detail

bool arm(std::string_view name, std::string_view spec) {
  if (name.empty()) return false;
  if (spec == "off") {
    disarm(name);
    return true;
  }
  Point parsed;
  if (!parse_spec(spec, parsed)) return false;

  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  Point& p = reg.points[std::string(name)];
  p.task = parsed.task;
  p.arg = parsed.arg;
  p.prob_permille = parsed.prob_permille;
  p.remaining.store(parsed.remaining.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  p.hits.store(0, std::memory_order_relaxed);
  p.fires.store(0, std::memory_order_relaxed);
  if (!p.armed) {
    p.armed = true;
    detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void disarm(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  const auto it = reg.points.find(std::string(name));
  if (it != reg.points.end() && it->second.armed) {
    it->second.armed = false;
    detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (auto& [name, point] : reg.points) {
    if (point.armed) {
      point.armed = false;
      detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

std::size_t configure(std::string_view multi_spec, std::string* error) {
  std::size_t armed = 0;
  while (!multi_spec.empty()) {
    const auto semi = multi_spec.find(';');
    std::string_view entry = multi_spec.substr(0, semi);
    multi_spec = semi == std::string_view::npos
                     ? std::string_view{}
                     : multi_spec.substr(semi + 1);
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos) continue;  // e.g. env set to "0" or "1"
    if (!arm(entry.substr(0, eq), entry.substr(eq + 1))) {
      if (error != nullptr) {
        *error = "malformed failpoint spec '" + std::string(entry) + "'";
      }
      return armed;
    }
    ++armed;
  }
  return armed;
}

std::size_t configure_from_env() {
  const char* env = std::getenv("LLPMST_FAILPOINTS");
  if (env == nullptr || *env == '\0') return 0;
  std::string error;
  const std::size_t armed = configure(env, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "LLPMST_FAILPOINTS: %s (ignored)\n", error.c_str());
  }
  return armed;
}

void set_seed(std::uint64_t seed) {
  registry().seed.store(seed, std::memory_order_relaxed);
}

std::uint64_t hit_count(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  const auto it = reg.points.find(std::string(name));
  return it == reg.points.end()
             ? 0
             : it->second.hits.load(std::memory_order_relaxed);
}

std::uint64_t fire_count(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  const auto it = reg.points.find(std::string(name));
  return it == reg.points.end()
             ? 0
             : it->second.fires.load(std::memory_order_relaxed);
}

std::vector<std::string> armed_points() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.points.size());
  for (const auto& [name, point] : reg.points) {
    if (point.armed) names.push_back(name);
  }
  return names;
}

}  // namespace llpmst::fail

#endif  // LLPMST_FAILPOINTS
