// LLP-Boruvka (the paper's Algorithm 6): Boruvka where each round's star
// contraction is an LLP instance.
//
// Per round: every vertex picks its minimum-weight edge and its parent
// across it (symmetry broken by id on mutual picks); the resulting rooted
// trees are collapsed to stars by pointer jumping run as pure LLP —
//     forbidden(j) = G[j] != G[G[j]],   advance(j) = G[j] := G[G[j]]
// — evaluated "in parallel and without synchronization" (chaotic relaxed
// atomics, no barrier between jumps); then edges are re-targeted to star
// roots and self-loops dropped, and the algorithm recurses on the contracted
// graph.  Compared to the synchronized baseline (mst/parallel_boruvka.hpp)
// this removes the per-jump barriers and the contraction dedup sort.
// Naturally computes minimum spanning *forests*.
#pragma once

#include "mst/boruvka_engine.hpp"
#include "mst/registry.hpp"

namespace llpmst {

/// Runs on ctx.executor(), reusing the context's BoruvkaScratch across runs.
/// ctx.cancel_token() (when set) stops the run between rounds; a triggered
/// token or an injected fault yields result.stats.outcome != kOk with a
/// PARTIAL forest.
[[nodiscard]] MstResult llp_boruvka(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm llp_boruvka_algorithm();

/// Ablation entry point: run LLP-Boruvka with explicit engine knobs (which
/// pointer-jumping flavour, whether contraction dedups).  llp_boruvka() is
/// configured {kAsynchronous, no dedup}; the baseline is {kSynchronized,
/// dedup}.  Config fields override the context (config.cancel, when set,
/// beats ctx.cancel_token(); config.scratch == nullptr means a fresh
/// engine-internal scratch, NOT the context's — the ablation's
/// scratch-reuse axis depends on that).
[[nodiscard]] MstResult llp_boruvka_configured(const CsrGraph& g,
                                               RunContext& ctx,
                                               const BoruvkaConfig& config);

}  // namespace llpmst
