#!/usr/bin/env python3
"""Reference client for llpmstd, the persistent MST/MSF query daemon.

Speaks the NDJSON protocol from docs/serving.md over a unix or TCP socket.
Stdlib only, so CI and operators can drive a daemon with nothing installed.

One-shot ops (print the response line and exit 0/1 on ok/error):

    llpmstd_client.py --socket /tmp/llpmst.sock healthz
    llpmstd_client.py --socket S list
    llpmstd_client.py --socket S load NAME SOURCE [--seed N]
    llpmstd_client.py --socket S unload NAME
    llpmstd_client.py --socket S query GRAPH [--algo A] [--budget-ms X]
                                             [--verify] [--pause-ms X]
    llpmstd_client.py --socket S cancel QUERY_ID
    llpmstd_client.py --socket S send '{"op":...}'     # raw request line
    llpmstd_client.py --socket S stats                 # HTTP GET /stats

The CI end-to-end gate (exit 0 only if every expectation holds):

    llpmstd_client.py --socket S mixed GRAPH --queries 8 --out reports.jsonl

`mixed` drives the full admission/execution/cancellation surface at once:
N concurrent verified queries, a past-deadline budget query, an unknown
algorithm (structured rejection), and a mid-flight cancel of a paused query.
Every response line is appended to --out for tools/check_report_schema.py.

--wait-ready SECS polls the socket (connect + healthz) until the daemon
answers, for CI scripts that just forked it into the background.
"""
import argparse
import json
import socket
import sys
import threading
import time


class ServeError(RuntimeError):
    pass


def connect(args, timeout=10.0):
    """A fresh connection; the daemon serves many, one thread each."""
    if args.socket:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.settimeout(timeout)
        s.connect(args.socket)
    else:
        s = socket.create_connection((args.host, args.port), timeout=timeout)
    return s


def read_line(sock, timeout):
    """One newline-terminated response (queries answer when they finish)."""
    sock.settimeout(timeout)
    buf = bytearray()
    while True:
        chunk = sock.recv(4096)
        if not chunk:
            raise ServeError("connection closed before a response arrived")
        buf += chunk
        nl = buf.find(b"\n")
        if nl >= 0:
            return buf[:nl].decode("utf-8")


def roundtrip(args, request, timeout=60.0):
    """Send one request on a fresh connection, return the parsed response."""
    with connect(args) as sock:
        sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
        line = read_line(sock, timeout)
    return json.loads(line), line


def wait_ready(args, seconds):
    """Poll connect+healthz until the daemon answers ok, or give up."""
    deadline = time.monotonic() + seconds
    last = "never connected"
    while time.monotonic() < deadline:
        try:
            doc, _ = roundtrip(args, {"op": "healthz"}, timeout=2.0)
            if doc.get("status") == "ok":
                return
            last = f"healthz answered {doc.get('status')!r}"
        except (OSError, ServeError, json.JSONDecodeError) as e:
            last = str(e) or type(e).__name__
        time.sleep(0.1)
    raise ServeError(f"daemon not ready after {seconds}s ({last})")


def http_get(args, path):
    """Plain HTTP on the same socket (the daemon sniffs 'GET ')."""
    with connect(args) as sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n"
                     .encode("ascii"))
        sock.settimeout(10.0)
        raw = bytearray()
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("ascii", "replace")
    return status_line, body.decode("utf-8", "replace")


class Recorder:
    """Thread-safe JSONL sink for every response line the run produced."""

    def __init__(self, path):
        self.path = path
        self.lines = []
        self.lock = threading.Lock()

    def add(self, line):
        with self.lock:
            self.lines.append(line)

    def flush(self):
        if self.path:
            with open(self.path, "w", encoding="utf-8") as f:
                for line in self.lines:
                    f.write(line + "\n")


def request_section(doc):
    return doc.get("request") or {}


def run_mixed(args, out):
    """The CI workload.  Returns a list of failure strings (empty = pass)."""
    failures = []
    rec = Recorder(out)

    def expect(cond, what):
        if not cond:
            failures.append(what)

    # --- N concurrent verified queries on one graph (exercises batching) ---
    results = [None] * args.queries

    def one_query(i):
        try:
            doc, line = roundtrip(
                args, {"op": "query", "graph": args.graph, "algo": "auto",
                       "id": f"mixed-{i}", "verify": True})
            rec.add(line)
            results[i] = doc
        except (OSError, ServeError, json.JSONDecodeError) as e:
            results[i] = e

    threads = [threading.Thread(target=one_query, args=(i,))
               for i in range(args.queries)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for i, doc in enumerate(results):
        if not isinstance(doc, dict):
            expect(False, f"query mixed-{i} failed: {doc}")
            continue
        req = request_section(doc)
        expect(doc.get("schema") == "llpmst-run-report",
               f"mixed-{i}: wanted a run report, got {doc.get('schema')}")
        expect(req.get("status") == "ok",
               f"mixed-{i}: status {req.get('status')} ({req.get('error')})")
        expect(req.get("verified") is True,
               f"mixed-{i}: verified={req.get('verified')}")

    # --- past-deadline budget: auto must fall back, not error out ---------
    doc, line = roundtrip(
        args, {"op": "query", "graph": args.graph, "algo": "auto",
               "id": "mixed-deadline", "budget_ms": 0.01})
    rec.add(line)
    req = request_section(doc)
    expect(req.get("status") == "ok",
           f"deadline query: status {req.get('status')} ({req.get('error')})")
    run = doc.get("run") or {}
    expect(run.get("fallback_reason") == "deadline_exceeded",
           f"deadline query: fallback_reason={run.get('fallback_reason')!r}, "
           f"algorithm={run.get('algorithm')!r}")

    # --- unknown algorithm: a structured rejection, not a hang/abort ------
    doc, line = roundtrip(
        args, {"op": "query", "graph": args.graph, "algo": "frobnicate",
               "id": "mixed-unknown"})
    rec.add(line)
    expect(doc.get("schema") == "llpmst-serve-response",
           f"unknown-algo: wanted an envelope, got {doc.get('schema')}")
    code = (doc.get("error") or {}).get("code")
    expect(code == "INVALID_ARGUMENT", f"unknown-algo: error.code={code}")

    # --- mid-flight cancel: pause the query, cancel it from the side ------
    slow = {}

    def slow_query():
        try:
            doc, line = roundtrip(
                args, {"op": "query", "graph": args.graph, "algo": "auto",
                       "id": "mixed-cancel", "pause_ms": 8000})
            rec.add(line)
            slow["doc"] = doc
        except (OSError, ServeError, json.JSONDecodeError) as e:
            slow["doc"] = e

    t = threading.Thread(target=slow_query)
    t.start()
    time.sleep(0.5)  # let it get claimed and enter the pause
    doc, line = roundtrip(args, {"op": "cancel", "target": "mixed-cancel"})
    rec.add(line)
    expect(doc.get("status") == "ok", f"cancel op: {doc.get('status')}")
    t.join(timeout=20)
    expect(not t.is_alive(), "cancelled query never answered")
    if isinstance(slow.get("doc"), dict):
        req = request_section(slow["doc"])
        code = (req.get("error") or {}).get("code")
        expect(code == "CANCELLED",
               f"cancelled query: request.error.code={code}")
    elif slow.get("doc") is not None:
        expect(False, f"cancelled query failed: {slow['doc']}")

    # --- the daemon is still healthy after all of the above ---------------
    doc, line = roundtrip(args, {"op": "healthz"})
    rec.add(line)
    expect(doc.get("status") == "ok", "healthz after workload")
    data = doc.get("data") or {}
    expect(data.get("active") == 0,
           f"queries still active after workload: {data.get('active')}")

    rec.flush()
    return failures


def build_parser():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--socket", default="", help="unix socket path")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--wait-ready", type=float, default=0, metavar="SECS",
                   help="poll until the daemon answers healthz")
    sub = p.add_subparsers(dest="cmd", required=True)

    sub.add_parser("healthz")
    sub.add_parser("list")
    sub.add_parser("stats")
    load = sub.add_parser("load")
    load.add_argument("name")
    load.add_argument("source")
    load.add_argument("--seed", type=int, default=1)
    unload = sub.add_parser("unload")
    unload.add_argument("name")
    query = sub.add_parser("query")
    query.add_argument("graph")
    query.add_argument("--algo", default="auto")
    query.add_argument("--budget-ms", type=float, default=None)
    query.add_argument("--pause-ms", type=float, default=None)
    query.add_argument("--id", default="")
    query.add_argument("--verify", action="store_true")
    cancel = sub.add_parser("cancel")
    cancel.add_argument("target")
    send = sub.add_parser("send")
    send.add_argument("line", help="raw JSON request")
    mixed = sub.add_parser("mixed")
    mixed.add_argument("graph")
    mixed.add_argument("--queries", type=int, default=8,
                       help="concurrent ok-path queries (default 8)")
    mixed.add_argument("--out", default="",
                       help="write every response line to this JSONL file")
    return p


def main():
    args = build_parser().parse_args()
    if not args.socket and args.port == 0:
        print("need --socket PATH or --host/--port", file=sys.stderr)
        return 2
    if args.wait_ready > 0:
        wait_ready(args, args.wait_ready)

    if args.cmd == "stats":
        status_line, body = http_get(args, "/stats")
        print(body, end="")
        return 0 if " 200 " in status_line else 1

    if args.cmd == "mixed":
        failures = run_mixed(args, args.out)
        if failures:
            for f in failures:
                print(f"MIXED FAIL: {f}", file=sys.stderr)
            return 1
        print(f"mixed workload ok: {args.queries} concurrent + deadline + "
              f"unknown-algo + mid-flight cancel")
        return 0

    if args.cmd == "send":
        request = json.loads(args.line)
    elif args.cmd == "query":
        request = {"op": "query", "graph": args.graph, "algo": args.algo}
        if args.id:
            request["id"] = args.id
        if args.budget_ms is not None:
            request["budget_ms"] = args.budget_ms
        if args.pause_ms is not None:
            request["pause_ms"] = args.pause_ms
        if args.verify:
            request["verify"] = True
    elif args.cmd == "load":
        request = {"op": "load", "name": args.name, "source": args.source,
                   "seed": args.seed}
    elif args.cmd == "unload":
        request = {"op": "unload", "name": args.name}
    elif args.cmd == "cancel":
        request = {"op": "cancel", "target": args.target}
    else:
        request = {"op": args.cmd}

    doc, line = roundtrip(args, request)
    print(line)
    if args.cmd == "query":
        return 0 if request_section(doc).get("status") == "ok" else 1
    return 0 if doc.get("status") == "ok" else 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ServeError as e:
        print(f"llpmstd_client: {e}", file=sys.stderr)
        sys.exit(1)
