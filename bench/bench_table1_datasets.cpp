// Reproduces Table I: the dataset inventory.
//
// Paper's Table I:
//   Dataset   Original name       Name used         Type
//   Galois    USA-road-d.USA      USA Roads - 23M   road
//   Graph500  graph500-s25-ef16   Graph500 18M      scalefree
//
// We emit the same rows for the synthetic stand-ins at benchmark scale,
// extended with the structural statistics that matter to the algorithms
// (m/n is what Section VII-C argues drives LLP-Prim's behaviour).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_table1_datasets",
                "Reproduces Table I (dataset inventory) for the synthetic "
                "stand-in workloads");
  auto& road_side = cli.add_int("road-side", 512, "road grid side length");
  auto& scale = cli.add_int("scale", 16, "graph500 RMAT scale (log2 n)");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  std::printf("Table I: graphs used in experimental evaluation\n");
  std::printf("(paper: USA-road-d.USA 23M road; graph500-s25-ef16 18M "
              "scalefree — reproduced at benchmark scale)\n\n");

  Table t({"Dataset", "Original name", "Name used", "Type", "Vertices",
           "Edges", "m/n", "MaxDeg", "Components"});

  const auto add = [&](const char* dataset, const char* orig,
                       const Workload& w) {
    const GraphStats s = compute_stats(w.graph);
    t.add_row({dataset, orig, w.name, w.type, format_count(s.num_vertices),
               format_count(s.num_edges), strf("%.2f", s.edges_per_vertex),
               format_count(s.max_degree), format_count(s.num_components)});
  };

  add("Galois", "USA-road-d.USA (synthetic)",
      make_road_workload(static_cast<std::uint32_t>(road_side)));
  add("Graph500", strf("graph500-s%lld-ef16 (synthetic)",
                       static_cast<long long>(scale)).c_str(),
      make_graph500_workload(static_cast<int>(scale), 1,
                             /*connect=*/false));

  t.print(csv);
  obs_cli.write_table(t);
  obs_cli.finish("bench_table1_datasets");
  return 0;
}
