#include "scenario/repro.hpp"

#include <cstdio>

namespace llpmst {

namespace {

// Single-quote for the shell; embedded single quotes become '\'' (none of
// our specs contain them today, but a repro line must never be mis-paste-able).
void append_quoted(std::string& out, std::string_view value) {
  out += '\'';
  for (char c : value) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += '\'';
}

}  // namespace

std::string format_repro_command(const ReproSpec& spec) {
  std::string out = "repro: ./build/examples/mst_tool";
  char buf[48];

  if (!spec.scenario.empty()) {
    out += " --scenario ";
    out.append(spec.scenario);
  }
  std::snprintf(buf, sizeof buf, " --seed %llu",
                static_cast<unsigned long long>(spec.seed));
  out += buf;
  if (!spec.algo.empty()) {
    out += " --algo ";
    out.append(spec.algo);
  }
  if (spec.threads > 0) {
    std::snprintf(buf, sizeof buf, " --threads %zu", spec.threads);
    out += buf;
  }
  if (spec.sim) out += " --sim";
  if (!spec.timeline.empty()) {
    out += " --sim-timeline ";
    append_quoted(out, spec.timeline);
  }
  if (!spec.failpoints.empty()) {
    out += " --failpoints ";
    append_quoted(out, spec.failpoints);
  }
  if (spec.deadline_ms > 0) {
    std::snprintf(buf, sizeof buf, " --deadline-ms %g", spec.deadline_ms);
    out += buf;
  }
  return out;
}

}  // namespace llpmst
