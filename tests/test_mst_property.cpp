// The library's central property test: every MST/MSF implementation returns
// the IDENTICAL edge set (the unique priority-ordered MSF) on a broad sweep
// of generator families, sizes, seeds, and thread counts — and that edge set
// passes full minimality verification.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graph/algorithms/connected_components.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/special.hpp"
#include "llp/llp_boruvka.hpp"
#include "llp/llp_prim_parallel.hpp"
#include "mst/kruskal.hpp"
#include "mst/parallel_boruvka.hpp"
#include "mst/verifier.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::all_msf_algorithms;
using test::csr;

enum class Family { kErdosRenyi, kRmat, kRoad, kGeometric, kTree, kForest,
                    kComplete };

const char* family_name(Family f) {
  switch (f) {
    case Family::kErdosRenyi: return "erdos_renyi";
    case Family::kRmat: return "rmat";
    case Family::kRoad: return "road";
    case Family::kGeometric: return "geometric";
    case Family::kTree: return "tree";
    case Family::kForest: return "forest";
    case Family::kComplete: return "complete";
  }
  return "?";
}

EdgeList make_graph(Family f, int size_class, std::uint64_t seed) {
  switch (f) {
    case Family::kErdosRenyi: {
      ErdosRenyiParams p;
      p.num_vertices = 200u << size_class;
      p.num_edges = p.num_vertices * 4;
      p.seed = seed;
      return generate_erdos_renyi(p);
    }
    case Family::kRmat: {
      RmatParams p;
      p.scale = 8 + size_class;
      p.edge_factor = 8;
      p.seed = seed;
      return generate_rmat(p);
    }
    case Family::kRoad: {
      RoadParams p;
      p.width = 16u << size_class;
      p.height = 16;
      p.seed = seed;
      return generate_road_network(p);
    }
    case Family::kGeometric: {
      GeometricParams p;
      p.num_vertices = 250u << size_class;
      p.neighbors = 5;
      p.seed = seed;
      return generate_geometric(p);
    }
    case Family::kTree:
      return make_random_tree(300u << size_class, seed);
    case Family::kForest:
      return make_forest(5, 60u << size_class, seed);
    case Family::kComplete:
      return make_complete(30u << size_class, seed);
  }
  return EdgeList(0);
}

class MsfEquivalence
    : public testing::TestWithParam<std::tuple<Family, int, int, int>> {};

TEST_P(MsfEquivalence, AllAlgorithmsAgreeAndVerify) {
  const auto [family, size_class, seed, threads] = GetParam();
  EdgeList list = make_graph(family, size_class, static_cast<std::uint64_t>(seed));
  const CsrGraph g = csr(list);
  const bool connected = connected_components(list).num_components == 1;

  ThreadPool pool(static_cast<std::size_t>(threads));
  const MstResult reference = kruskal(g);
  {
    const VerifyResult v = verify_msf(g, reference);
    ASSERT_TRUE(v.ok) << family_name(family) << ": " << v.error;
  }

  for (const auto& algo : all_msf_algorithms()) {
    if (algo.connected_only && !connected) continue;
    const MstResult r = algo.run(g, pool);
    ASSERT_EQ(r.edges, reference.edges)
        << algo.name << " on " << family_name(family) << " size "
        << size_class << " seed " << seed << " threads " << threads;
    ASSERT_EQ(r.total_weight, reference.total_weight) << algo.name;
    ASSERT_EQ(r.num_trees, reference.num_trees) << algo.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MsfEquivalence,
    testing::Combine(testing::Values(Family::kErdosRenyi, Family::kRmat,
                                     Family::kRoad, Family::kGeometric,
                                     Family::kTree, Family::kForest,
                                     Family::kComplete),
                     testing::Values(0, 1, 2),  // size classes
                     testing::Values(1, 2, 3),  // seeds
                     testing::Values(1, 4, 8)),  // thread counts
    [](const testing::TestParamInfo<MsfEquivalence::ParamType>& info) {
      return std::string(family_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param)) + "_t" +
             std::to_string(std::get<3>(info.param));
    });

// The structural fact LLP-Prim's early fixing and LLP-Boruvka's hooking
// both stand on (the paper's Lemma 2 via the cut property): every vertex's
// minimum-weight incident edge is an MSF edge.
TEST(MstStructuralLemmas, EveryVertexMweIsInTheMsf) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ErdosRenyiParams p;
    p.num_vertices = 400;
    p.num_edges = 2400;
    p.seed = seed;
    const CsrGraph g = csr(generate_erdos_renyi(p));
    const MstResult msf = kruskal(g);
    std::vector<bool> in_msf(g.num_edges(), false);
    for (const EdgeId e : msf.edges) in_msf[e] = true;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const EdgePriority mwe = g.min_incident_priority(v);
      if (mwe == kInfinitePriority) continue;  // isolated vertex
      ASSERT_TRUE(in_msf[priority_edge(mwe)])
          << "vertex " << v << "'s MWE is not an MSF edge (seed " << seed
          << ")";
    }
  }
}

// Repeated-run determinism under maximum thread contention: racy execution,
// unique result.
TEST(MsfDeterminism, RepeatedParallelRunsIdentical) {
  RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 5;
  EdgeList list = generate_rmat(p);
  connect_components(list);
  const CsrGraph g = csr(list);
  ThreadPool pool(8);
  RunContext ctx(pool);

  const MstResult reference = kruskal(g);
  for (int run = 0; run < 10; ++run) {
    ASSERT_EQ(llp_boruvka(g, ctx).edges, reference.edges) << "run " << run;
    ASSERT_EQ(llp_prim_parallel(g, ctx).edges, reference.edges)
        << "run " << run;
    ASSERT_EQ(parallel_boruvka(g, ctx).edges, reference.edges)
        << "run " << run;
  }
}

}  // namespace
}  // namespace llpmst
