#include "serve/json.hpp"

#include <cstdlib>
#include <utility>

namespace llpmst::serve {

namespace {

constexpr std::size_t kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string* error;

  bool fail(const std::string& why) {
    if (error != nullptr) {
      *error = why + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool at_end() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return fail("invalid literal");
    }
    pos += word.size();
    return true;
  }

  bool parse_hex4(unsigned* out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    pos += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string* out) {
    ++pos;  // opening quote
    std::string s;
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        *out = std::move(s);
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        s.push_back(c);
        ++pos;
        continue;
      }
      ++pos;  // backslash
      if (at_end()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half.
            if (pos + 2 > text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u') {
              return fail("unpaired high surrogate");
            }
            pos += 2;
            unsigned lo = 0;
            if (!parse_hex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(s, cp);
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_number(double* out) {
    const std::size_t start = pos;
    if (!at_end() && peek() == '-') ++pos;
    if (at_end() || peek() < '0' || peek() > '9') {
      return fail("malformed number");
    }
    if (peek() == '0') {
      ++pos;  // leading zero admits no further integer digits
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!at_end() && peek() == '.') {
      ++pos;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("malformed fraction");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("malformed exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    *out = std::strtod(token.c_str(), nullptr);
    return true;
  }

  bool parse_value(Json* out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': {
        ++pos;
        std::map<std::string, Json> members;
        skip_ws();
        if (!at_end() && peek() == '}') {
          ++pos;
          *out = Json::make_object(std::move(members));
          return true;
        }
        while (true) {
          skip_ws();
          if (at_end() || peek() != '"') return fail("expected object key");
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (at_end() || peek() != ':') return fail("expected ':'");
          ++pos;
          Json value;
          if (!parse_value(&value, depth + 1)) return false;
          members[std::move(key)] = std::move(value);
          skip_ws();
          if (at_end()) return fail("unterminated object");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == '}') {
            ++pos;
            *out = Json::make_object(std::move(members));
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        std::vector<Json> items;
        skip_ws();
        if (!at_end() && peek() == ']') {
          ++pos;
          *out = Json::make_array(std::move(items));
          return true;
        }
        while (true) {
          Json value;
          if (!parse_value(&value, depth + 1)) return false;
          items.push_back(std::move(value));
          skip_ws();
          if (at_end()) return fail("unterminated array");
          if (peek() == ',') {
            ++pos;
            continue;
          }
          if (peek() == ']') {
            ++pos;
            *out = Json::make_array(std::move(items));
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Json::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        *out = Json::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = Json::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        *out = Json::make_null();
        return true;
      default: {
        double v = 0;
        if (!parse_number(&v)) return false;
        *out = Json::make_number(v);
        return true;
      }
    }
  }
};

}  // namespace

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::string Json::get_string(std::string_view key,
                             std::string_view fallback) const {
  const Json* v = find(key);
  if (v == nullptr || v->is_null() || !v->is_string()) {
    return std::string(fallback);
  }
  return v->as_string();
}

double Json::get_number(std::string_view key, double fallback) const {
  const Json* v = find(key);
  if (v == nullptr || v->is_null() || !v->is_number()) return fallback;
  return v->as_number();
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  if (v == nullptr || v->is_null() || !v->is_bool()) return fallback;
  return v->as_bool();
}

bool Json::has_wrong_type(std::string_view key, Type want) const {
  const Json* v = find(key);
  return v != nullptr && !v->is_null() && v->type() != want;
}

Json Json::make_bool(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::make_number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::make_string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::make_array(std::vector<Json> v) {
  Json j;
  j.type_ = Type::kArray;
  j.array_ = std::move(v);
  return j;
}

Json Json::make_object(std::map<std::string, Json> v) {
  Json j;
  j.type_ = Type::kObject;
  j.object_ = std::move(v);
  return j;
}

bool parse_json(std::string_view text, Json* out, std::string* error) {
  Parser p{text, 0, error};
  Json value;
  if (!p.parse_value(&value, 0)) return false;
  p.skip_ws();
  if (!p.at_end()) {
    return p.fail("trailing characters after document");
  }
  *out = std::move(value);
  return true;
}

}  // namespace llpmst::serve
