// Connected components: sequential (union-find) and parallel (label
// propagation over edges).  Component labels are the minimum vertex id in
// the component, so both implementations agree exactly — tests rely on that.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "parallel/executor.hpp"

namespace llpmst {

struct ComponentsResult {
  /// label[v] = minimum vertex id in v's component.
  std::vector<VertexId> label;
  std::size_t num_components = 0;
};

/// Union-find based; works straight off an edge list.
[[nodiscard]] ComponentsResult connected_components(const EdgeList& list);

/// Parallel label propagation with pointer jumping (the same machinery as
/// LLP-Boruvka's star contraction, exposed as a standalone algorithm).
[[nodiscard]] ComponentsResult connected_components_parallel(
    const EdgeList& list, Executor& pool);

/// True iff the graph is a single connected component (and non-empty).
[[nodiscard]] bool is_connected(const EdgeList& list);

}  // namespace llpmst
