#include "graph/csr_graph.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "parallel/parallel_for.hpp"
#include "parallel/scan.hpp"

namespace llpmst {

CsrGraph CsrGraph::build(const EdgeList& list, Executor* pool) {
  LLPMST_CHECK_MSG(list.is_normalized(),
                   "CsrGraph::build requires a normalized EdgeList "
                   "(call EdgeList::normalize() first)");
  LLPMST_CHECK_MSG(list.num_edges() < kInvalidEdge,
                   "edge count exceeds 32-bit edge id space");

  const std::size_t n = list.num_vertices();
  const std::size_t m = list.num_edges();
  std::vector<WeightedEdge> edges = list.edges();
  std::vector<VertexId> targets;
  std::vector<EdgePriority> priorities;
  std::vector<EdgePriority> mwe;
  std::vector<std::uint8_t> mwe_flags;

  // Degree counting.  The list is normalized (each edge appears once), so
  // each edge contributes to both endpoints.  Offsets are u64 regardless of
  // platform so heap- and mmap-backed sections share one span type.
  std::vector<std::uint64_t> counts(n + 1, 0);
  if (pool != nullptr && pool->num_threads() > 1) {
    // Per-thread count arrays would be O(t*n); instead count with atomics —
    // degrees are written once per arc, contention is negligible for m >> t.
    std::vector<std::atomic<std::uint64_t>> acounts(n);
    for (auto& c : acounts) c.store(0, std::memory_order_relaxed);
    parallel_for(*pool, 0, m, [&](std::size_t i) {
      const WeightedEdge& e = edges[i];
      acounts[e.u].fetch_add(1, std::memory_order_relaxed);
      acounts[e.v].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t v = 0; v < n; ++v) {
      counts[v] = acounts[v].load(std::memory_order_relaxed);
    }
  } else {
    for (const WeightedEdge& e : edges) {
      ++counts[e.u];
      ++counts[e.v];
    }
  }

  // Exclusive scan -> row offsets.
  if (pool != nullptr) {
    exclusive_scan_inplace(*pool, counts);
  } else {
    std::uint64_t acc = 0;
    for (auto& c : counts) {
      std::uint64_t v = c;
      c = acc;
      acc += v;
    }
  }
  std::vector<std::uint64_t> offsets = std::move(counts);  // n+1 offsets

  // Fill arcs.  Write cursors per vertex; sequential fill keeps arcs sorted
  // by (source, edge id).  The parallel fill uses atomic cursors — arc order
  // within a row is then nondeterministic, which no algorithm relies on, but
  // to keep *runs reproducible* we sort each row afterwards.
  targets.resize(2 * m);
  priorities.resize(2 * m);
  if (pool != nullptr && pool->num_threads() > 1) {
    std::vector<std::atomic<std::uint64_t>> cursor(n);
    for (std::size_t v = 0; v < n; ++v) {
      cursor[v].store(offsets[v], std::memory_order_relaxed);
    }
    parallel_for(*pool, 0, m, [&](std::size_t i) {
      const WeightedEdge& e = edges[i];
      const EdgePriority p = make_priority(e.w, static_cast<EdgeId>(i));
      std::uint64_t su = cursor[e.u].fetch_add(1, std::memory_order_relaxed);
      targets[su] = e.v;
      priorities[su] = p;
      std::uint64_t sv = cursor[e.v].fetch_add(1, std::memory_order_relaxed);
      targets[sv] = e.u;
      priorities[sv] = p;
    });
    // Canonicalize row order (by priority) so builds are deterministic.
    parallel_for(*pool, 0, n, [&](std::size_t v) {
      const std::size_t lo = offsets[v], hi = offsets[v + 1];
      // Sort (priority, target) pairs by priority.
      std::vector<std::pair<EdgePriority, VertexId>> row;
      row.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        row.emplace_back(priorities[i], targets[i]);
      }
      std::sort(row.begin(), row.end());
      for (std::size_t i = lo; i < hi; ++i) {
        priorities[i] = row[i - lo].first;
        targets[i] = row[i - lo].second;
      }
    }, /*chunk=*/64);
  } else {
    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < m; ++i) {
      const WeightedEdge& e = edges[i];
      const EdgePriority p = make_priority(e.w, static_cast<EdgeId>(i));
      targets[cursor[e.u]] = e.v;
      priorities[cursor[e.u]] = p;
      ++cursor[e.u];
      targets[cursor[e.v]] = e.u;
      priorities[cursor[e.v]] = p;
      ++cursor[e.v];
    }
    // Sequential fill emits rows in ascending edge-id order, which for a
    // normalized list is ascending (u, v) but not ascending *priority*.
    // Sort rows by priority to match the parallel build bit-for-bit.
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t lo = offsets[v], hi = offsets[v + 1];
      std::vector<std::pair<EdgePriority, VertexId>> row;
      row.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        row.emplace_back(priorities[i], targets[i]);
      }
      std::sort(row.begin(), row.end());
      for (std::size_t i = lo; i < hi; ++i) {
        priorities[i] = row[i - lo].first;
        targets[i] = row[i - lo].second;
      }
    }
  }

  // Per-vertex minimum incident priority: rows are sorted, so it is the
  // first arc of each non-empty row.
  mwe.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    mwe[v] = (offsets[v] == offsets[v + 1]) ? kInfinitePriority
                                            : priorities[offsets[v]];
  }

  // Per-arc MWE flags (see arc_mwe_flags): arc from v is flagged when its
  // edge is the MWE of v or of the target.
  mwe_flags.resize(2 * m);
  const auto fill_flags = [&](std::size_t v) {
    for (std::size_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const EdgePriority p = priorities[i];
      mwe_flags[i] = (p == mwe[v] || p == mwe[targets[i]]) ? 1 : 0;
    }
  };
  if (pool != nullptr) {
    parallel_for(*pool, 0, n, fill_flags, /*chunk=*/256);
  } else {
    for (std::size_t v = 0; v < n; ++v) fill_flags(v);
  }

  return from_storage(std::make_shared<HeapStorage>(
      std::move(offsets), std::move(targets), std::move(priorities),
      std::move(mwe), std::move(mwe_flags), std::move(edges)));
}

CsrGraph CsrGraph::from_storage(StoragePtr storage) {
  LLPMST_CHECK_MSG(storage != nullptr,
                   "CsrGraph::from_storage requires a storage backend");
  const CsrSections& s = storage->sections();
  const std::size_t n = s.offsets.empty() ? 0 : s.offsets.size() - 1;
  const std::size_t m = s.edges.size();
  LLPMST_CHECK_MSG(s.targets.size() == 2 * m &&
                       s.priorities.size() == 2 * m &&
                       s.mwe_flags.size() == 2 * m && s.mwe.size() == n,
                   "storage sections violate the CSR shape contract");
  CsrGraph g;
  g.sec_ = s;
  g.storage_ = std::move(storage);
  return g;
}

TotalWeight CsrGraph::total_weight() const {
  TotalWeight sum = 0;
  for (const WeightedEdge& e : sec_.edges) sum += e.w;
  return sum;
}

}  // namespace llpmst
