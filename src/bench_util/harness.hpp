// Repetition/timing harness for the figure benchmarks: runs a callable
// several times (after warmup), verifies the result against a reference on
// the first repetition, and reports median wall time.
#pragma once

#include <functional>
#include <string>

#include "mst/mst_result.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

namespace llpmst {

struct BenchOptions {
  int warmup = 1;
  int repetitions = 3;
  bool verify = true;  // cross-check the edge set against a reference MSF
};

struct BenchMeasurement {
  std::string name;
  Summary time_ms;        // across repetitions
  MstResult last_result;  // instrumentation from the last repetition
  bool verified = false;  // result matched the reference (when requested)
};

/// Times `run` (which must return the MSF of `g`).  When options.verify is
/// set, compares the edge set of the first repetition with `reference`
/// (dies loudly on mismatch — a benchmark of a wrong algorithm is worse
/// than no benchmark).
[[nodiscard]] BenchMeasurement measure_mst(
    const std::string& name, const CsrGraph& g, const MstResult& reference,
    const std::function<MstResult()>& run, const BenchOptions& options = {});

/// Shared observability flags for the bench binaries.  Construct before
/// cli.parse() (registers --metrics-json and --trace), call begin() right
/// after parse (flips the runtime metric/trace gates when either flag was
/// given), and finish() once the benchmark work is done (writes the run
/// report and/or trace file).  With neither flag passed, both calls are
/// no-ops, so benches pay nothing for carrying the flags.
class ObsCli {
 public:
  explicit ObsCli(CliParser& cli);

  /// Enables metrics collection / trace recording as requested.
  void begin() const;

  /// Stops tracing and writes the requested artefacts.  `tool` names the
  /// emitting binary in the report; `threads` (0 = unknown/swept) lands in
  /// the report's run section.  Returns false after printing to stderr if
  /// a file could not be written.
  bool finish(const std::string& tool, std::size_t threads = 0) const;

 private:
  std::string* metrics_json_;
  std::string* trace_;
};

}  // namespace llpmst
