// Tests for atomic_utils, ConcurrentBag, and AtomicBitset.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "ds/atomic_bitset.hpp"
#include "parallel/atomic_utils.hpp"
#include "parallel/concurrent_bag.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst {
namespace {

// ---------------------------------------------------------------- atomics

TEST(AtomicUtils, FetchMinLowersAndReports) {
  std::atomic<std::uint64_t> a{10};
  EXPECT_TRUE(atomic_fetch_min(a, std::uint64_t{5}));
  EXPECT_EQ(a.load(), 5u);
  EXPECT_FALSE(atomic_fetch_min(a, std::uint64_t{5}));  // equal: no change
  EXPECT_FALSE(atomic_fetch_min(a, std::uint64_t{9}));  // higher: no change
  EXPECT_EQ(a.load(), 5u);
}

TEST(AtomicUtils, FetchMaxRaisesAndReports) {
  std::atomic<std::int64_t> a{-3};
  EXPECT_TRUE(atomic_fetch_max(a, std::int64_t{7}));
  EXPECT_FALSE(atomic_fetch_max(a, std::int64_t{7}));
  EXPECT_FALSE(atomic_fetch_max(a, std::int64_t{0}));
  EXPECT_EQ(a.load(), 7);
}

TEST(AtomicUtils, ConcurrentFetchMinFindsGlobalMin) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> target{~0ull};
  parallel_for(pool, 0, 100000, [&](std::size_t i) {
    atomic_fetch_min(target, static_cast<std::uint64_t>((i * 7919) % 100000));
  });
  EXPECT_EQ(target.load(), 0u);
}

TEST(AtomicUtils, ClaimIsExclusive) {
  std::atomic<std::uint8_t> flag{0};
  EXPECT_TRUE(atomic_claim(flag));
  EXPECT_FALSE(atomic_claim(flag));
}

TEST(AtomicUtils, ConcurrentClaimHasExactlyOneWinner) {
  ThreadPool pool(8);
  for (int round = 0; round < 100; ++round) {
    std::atomic<std::uint8_t> flag{0};
    std::atomic<int> winners{0};
    pool.run_team([&](std::size_t) {
      if (atomic_claim(flag)) winners.fetch_add(1);
    });
    ASSERT_EQ(winners.load(), 1);
  }
}

// ---------------------------------------------------------------- bag

TEST(ConcurrentBag, StartsEmpty) {
  ConcurrentBag<int> bag(3);
  EXPECT_TRUE(bag.empty());
  EXPECT_EQ(bag.size(), 0u);
  EXPECT_EQ(bag.num_workers(), 3u);
}

TEST(ConcurrentBag, DrainCollectsEverythingAndEmpties) {
  ConcurrentBag<int> bag(2);
  bag.push(0, 1);
  bag.push(1, 2);
  bag.push(0, 3);
  EXPECT_EQ(bag.size(), 3u);
  std::vector<int> out{99};  // drain appends
  bag.drain_into(out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 99);
  EXPECT_TRUE(bag.empty());
  const std::multiset<int> rest(out.begin() + 1, out.end());
  EXPECT_EQ(rest, (std::multiset<int>{1, 2, 3}));
}

TEST(ConcurrentBag, ParallelPushesAllArrive) {
  constexpr std::size_t kThreads = 4;
  ThreadPool pool(kThreads);
  ConcurrentBag<std::uint32_t> bag(kThreads);
  const std::size_t n = 100000;
  parallel_for_worker(pool, 0, n, [&](std::size_t i, std::size_t w) {
    bag.push(w, static_cast<std::uint32_t>(i));
  });
  std::vector<std::uint32_t> out;
  bag.drain_into(out);
  ASSERT_EQ(out.size(), n);
  std::sort(out.begin(), out.end());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i);
}

// ---------------------------------------------------------------- bitset

TEST(AtomicBitset, SetAndTest) {
  AtomicBitset bs(130);  // crosses word boundaries
  EXPECT_EQ(bs.size(), 130u);
  EXPECT_FALSE(bs.test(0));
  EXPECT_TRUE(bs.test_and_set(0));
  EXPECT_FALSE(bs.test_and_set(0));
  EXPECT_TRUE(bs.test(0));
  EXPECT_TRUE(bs.test_and_set(129));
  EXPECT_TRUE(bs.test(129));
  EXPECT_FALSE(bs.test(64));
  EXPECT_EQ(bs.count(), 2u);
}

TEST(AtomicBitset, ClearResets) {
  AtomicBitset bs(100);
  for (std::size_t i = 0; i < 100; i += 3) bs.test_and_set(i);
  bs.clear();
  EXPECT_EQ(bs.count(), 0u);
  EXPECT_FALSE(bs.test(0));
}

TEST(AtomicBitset, ConcurrentTestAndSetUniqueWinners) {
  ThreadPool pool(8);
  AtomicBitset bs(1000);
  std::atomic<std::size_t> wins{0};
  // Every bit is contested by every worker; each must be won exactly once.
  pool.run_team([&](std::size_t) {
    for (std::size_t i = 0; i < 1000; ++i) {
      if (bs.test_and_set(i)) wins.fetch_add(1);
    }
  });
  EXPECT_EQ(wins.load(), 1000u);
  EXPECT_EQ(bs.count(), 1000u);
}

}  // namespace
}  // namespace llpmst
