#include "mst/kruskal_parallel.hpp"

#include <numeric>

#include "core/run_context.hpp"
#include "ds/union_find.hpp"
#include "parallel/sort.hpp"

namespace llpmst {

MstResult kruskal_parallel(const CsrGraph& g, RunContext& ctx) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();

  // Sorting packed priorities sorts by (weight, id); the id IS the low half,
  // so no separate index array is needed.
  std::vector<EdgePriority> order(m);
  for (EdgeId e = 0; e < m; ++e) order[e] = g.edge_priority(e);
  parallel_sort(ctx.executor(), order);

  MstResult r;
  r.edges.reserve(n > 0 ? n - 1 : 0);
  UnionFind uf(n);
  for (const EdgePriority p : order) {
    const EdgeId e = priority_edge(p);
    const WeightedEdge& we = g.edge(e);
    if (uf.unite(we.u, we.v)) {
      r.edges.push_back(e);
      if (r.edges.size() + 1 == n) break;
    }
  }
  finalize_result(g, r);
  return r;
}

MstAlgorithm kruskal_parallel_algorithm() {
  return {"kruskal-parallel", "Parallel Kruskal",
          "Kruskal with the edge sort on the pool, sequential union-find",
          {.parallel = true, .msf_capable = true, .deterministic = true,
           .cancellable = false},
          [](const CsrGraph& g, RunContext& ctx) {
            return kruskal_parallel(g, ctx);
          }};
}

}  // namespace llpmst
