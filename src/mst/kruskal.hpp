// Kruskal's algorithm: globally sort edges by priority, add each edge that
// joins two different union-find components.  Handles forests naturally.
// Serves as the oracle implementation in tests (simplest to audit) and as a
// sequential baseline.
#pragma once

#include "mst/mst_result.hpp"

namespace llpmst {

[[nodiscard]] MstResult kruskal(const CsrGraph& g);

}  // namespace llpmst
