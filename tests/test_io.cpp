#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/generators/random_graph.hpp"
#include "graph/generators/special.hpp"
#include "graph/io/dimacs.hpp"
#include "graph/io/edge_list_io.hpp"

namespace llpmst {
namespace {

class IoTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("llpmst_io_" + std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  void write_file(const std::string& name, const std::string& content) {
    std::ofstream out(path(name), std::ios::binary);
    out << content;
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------- dimacs

TEST_F(IoTest, DimacsRoundTrip) {
  const EdgeList original = make_paper_figure1();
  ASSERT_TRUE(write_dimacs(path("g.gr"), original).ok());
  const DimacsResult r = read_dimacs(path("g.gr"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.graph.num_vertices(), original.num_vertices());
  EXPECT_EQ(r.graph.edges(), original.edges());
}

TEST_F(IoTest, DimacsParsesHandWrittenFile) {
  write_file("hand.gr",
             "c a comment\n"
             "p sp 3 4\n"
             "a 1 2 10\n"
             "a 2 1 10\n"
             "a 2 3 20\n"
             "a 3 2 20\n");
  const DimacsResult r = read_dimacs(path("hand.gr"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.graph.num_vertices(), 3u);
  ASSERT_EQ(r.graph.num_edges(), 2u);  // both-ways arcs collapse
  EXPECT_EQ(r.graph[0], (WeightedEdge{0, 1, 10}));
  EXPECT_EQ(r.graph[1], (WeightedEdge{1, 2, 20}));
}

TEST_F(IoTest, DimacsMissingFile) {
  const DimacsResult r = read_dimacs(path("nope.gr"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("cannot open"), std::string::npos);
}

TEST_F(IoTest, DimacsMissingProblemLine) {
  write_file("bad.gr", "a 1 2 3\n");
  const DimacsResult r = read_dimacs(path("bad.gr"));
  EXPECT_FALSE(r.ok());
}

TEST_F(IoTest, DimacsMalformedProblemLine) {
  write_file("bad.gr", "p sp three four\n");
  EXPECT_FALSE(read_dimacs(path("bad.gr")).ok());
}

TEST_F(IoTest, DimacsArcOutOfRange) {
  write_file("bad.gr", "p sp 2 1\na 1 9 5\n");
  const DimacsResult r = read_dimacs(path("bad.gr"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("out of range"), std::string::npos);
}

TEST_F(IoTest, DimacsZeroBasedVertexRejected) {
  write_file("bad.gr", "p sp 2 1\na 0 1 5\n");
  EXPECT_FALSE(read_dimacs(path("bad.gr")).ok());
}

TEST_F(IoTest, DimacsUnknownLineType) {
  write_file("bad.gr", "p sp 2 1\nq 1 2 3\n");
  const DimacsResult r = read_dimacs(path("bad.gr"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("unknown line type"), std::string::npos);
}

TEST_F(IoTest, DimacsOversizedWeightRejected) {
  write_file("bad.gr", "p sp 2 1\na 1 2 99999999999\n");
  EXPECT_FALSE(read_dimacs(path("bad.gr")).ok());
}

// ---------------------------------------------------------------- text

TEST_F(IoTest, TextRoundTrip) {
  ErdosRenyiParams p;
  p.num_vertices = 100;
  p.num_edges = 300;
  const EdgeList original = generate_erdos_renyi(p);
  ASSERT_TRUE(write_edge_list_text(path("g.txt"), original).ok());
  const EdgeListResult r = read_edge_list_text(path("g.txt"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.graph.edges(), original.edges());
}

TEST_F(IoTest, TextSkipsCommentsAndBlanks) {
  write_file("g.txt", "# header\n\n0 1 5\n  # indented comment\n1 2 6\n");
  const EdgeListResult r = read_edge_list_text(path("g.txt"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.graph.num_edges(), 2u);
  EXPECT_EQ(r.graph.num_vertices(), 3u);
}

TEST_F(IoTest, TextMalformedLineReported) {
  write_file("g.txt", "0 1 5\n0 two 6\n");
  const EdgeListResult r = read_edge_list_text(path("g.txt"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("line 2"), std::string::npos);
}

TEST_F(IoTest, TextMissingColumnReported) {
  write_file("g.txt", "0 1\n");
  EXPECT_FALSE(read_edge_list_text(path("g.txt")).ok());
}

TEST_F(IoTest, TextEmptyFileYieldsEmptyGraph) {
  write_file("g.txt", "");
  const EdgeListResult r = read_edge_list_text(path("g.txt"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.graph.num_edges(), 0u);
}

// ---------------------------------------------------------------- binary

TEST_F(IoTest, BinaryRoundTrip) {
  ErdosRenyiParams p;
  p.num_vertices = 500;
  p.num_edges = 2500;
  p.seed = 77;
  const EdgeList original = generate_erdos_renyi(p);
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), original).ok());
  const EdgeListResult r = read_edge_list_binary(path("g.bin"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.graph.num_vertices(), original.num_vertices());
  EXPECT_EQ(r.graph.edges(), original.edges());
}

TEST_F(IoTest, BinaryBadMagicRejected) {
  write_file("g.bin", "GARBAGEGARBAGEGARBAGEGARBAGE");
  const EdgeListResult r = read_edge_list_binary(path("g.bin"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("magic"), std::string::npos);
}

TEST_F(IoTest, BinaryTruncationDetected) {
  const EdgeList original = make_path(50);
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), original).ok());
  // Truncate the file in the middle of the records.
  const auto full = std::filesystem::file_size(path("g.bin"));
  std::filesystem::resize_file(path("g.bin"), full - 10);
  const EdgeListResult r = read_edge_list_binary(path("g.bin"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("truncated"), std::string::npos);
}

TEST_F(IoTest, BinaryEndpointOutOfRangeDetected) {
  // Hand-craft a file whose record references vertex 9 with n=2.
  std::string blob = "LLPM";
  const std::uint32_t version = 1;
  const std::uint64_t n = 2, m = 1;
  blob.append(reinterpret_cast<const char*>(&version), 4);
  blob.append(reinterpret_cast<const char*>(&n), 8);
  blob.append(reinterpret_cast<const char*>(&m), 8);
  const std::uint32_t rec[3] = {0, 9, 5};
  blob.append(reinterpret_cast<const char*>(rec), 12);
  write_file("g.bin", blob);
  const EdgeListResult r = read_edge_list_binary(path("g.bin"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace llpmst
