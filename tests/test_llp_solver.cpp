// The generic LLP engine on synthetic lattice problems.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "llp/llp_solver.hpp"
#include "parallel/atomic_utils.hpp"
#include "parallel/thread_pool.hpp"
#include "support/random.hpp"

namespace llpmst {
namespace {

class LlpSolver : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
};
INSTANTIATE_TEST_SUITE_P(Threads, LlpSolver, testing::Values(1, 2, 8));

TEST_P(LlpSolver, IndependentThresholds) {
  // B(G) = forall i: G[i] >= t[i].  Least solution: G == t.
  const std::size_t n = 1000;
  std::vector<std::atomic<std::uint64_t>> G(n);
  std::vector<std::uint64_t> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    G[i].store(0);
    t[i] = (i * 37) % 100;
  }
  const LlpStats s = llp_solve(
      pool_, n, [&](std::size_t i) { return G[i].load() < t[i]; },
      [&](std::size_t i) { G[i].store(t[i]); });
  EXPECT_TRUE(s.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(G[i].load(), t[i]);
  // One sweep advances everything, a second confirms quiescence.
  EXPECT_LE(s.sweeps, 2u);
}

TEST_P(LlpSolver, ChainedConstraintsPropagate) {
  // B(G) = forall i > 0: G[i] >= G[i-1] + 1, and G[0] >= 5.
  // Least solution: G[i] = 5 + i.  Requires value propagation along the
  // chain across sweeps.
  const std::size_t n = 200;
  std::vector<std::atomic<std::uint64_t>> G(n);
  for (auto& g : G) g.store(0);
  const auto bound = [&](std::size_t i) -> std::uint64_t {
    return i == 0 ? 5 : G[i - 1].load(std::memory_order_relaxed) + 1;
  };
  const LlpStats s = llp_solve(
      pool_, n,
      [&](std::size_t i) {
        return G[i].load(std::memory_order_relaxed) < bound(i);
      },
      [&](std::size_t i) {
        G[i].store(bound(i), std::memory_order_relaxed);
      });
  EXPECT_TRUE(s.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(G[i].load(), 5 + i) << "index " << i;
  }
  EXPECT_GE(s.advances, n);  // every index advanced at least once
}

TEST_P(LlpSolver, AlreadyFeasibleDoesNothing) {
  std::vector<std::atomic<std::uint64_t>> G(50);
  for (auto& g : G) g.store(10);
  const LlpStats s = llp_solve(
      pool_, G.size(), [&](std::size_t) { return false; },
      [&](std::size_t) { FAIL() << "advance must not be called"; });
  EXPECT_TRUE(s.converged);
  EXPECT_EQ(s.advances, 0u);
  EXPECT_EQ(s.sweeps, 1u);
}

TEST_P(LlpSolver, EmptyIndexSpace) {
  const LlpStats s = llp_solve(
      pool_, 0, [&](std::size_t) { return true; }, [&](std::size_t) {});
  EXPECT_TRUE(s.converged);
}

TEST_P(LlpSolver, RandomMonotoneConstraintSystems) {
  // Property test on the engine itself: random systems
  //     G[i] >= max over deps d of (G[d] + delta(i, d)),  plus G[i] >= base[i]
  // on a random DAG (deps point to smaller indices, so a least fixpoint
  // exists and is computable by one forward pass).  llp_solve must reach
  // exactly that fixpoint for every seed and thread count.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Xoshiro256 rng(seed);
    const std::size_t n = 200 + rng.next_below(200);
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> deps(n);
    std::vector<std::uint64_t> base(n);
    for (std::size_t i = 0; i < n; ++i) {
      base[i] = rng.next_below(50);
      const std::size_t k = rng.next_below(4);
      for (std::size_t d = 0; d < k && i > 0; ++d) {
        deps[i].emplace_back(static_cast<std::uint32_t>(rng.next_below(i)),
                             rng.next_below(20));
      }
    }
    // Reference least fixpoint: forward pass over the DAG order.
    std::vector<std::uint64_t> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t lo = base[i];
      for (const auto& [d, delta] : deps[i]) {
        lo = std::max(lo, expected[d] + delta);
      }
      expected[i] = lo;
    }

    std::vector<std::atomic<std::uint64_t>> G(n);
    for (auto& g : G) g.store(0);
    const auto bound = [&](std::size_t i) {
      std::uint64_t lo = base[i];
      for (const auto& [d, delta] : deps[i]) {
        lo = std::max(lo, G[d].load(std::memory_order_relaxed) + delta);
      }
      return lo;
    };
    const LlpStats s = llp_solve(
        pool_, n,
        [&](std::size_t i) {
          return G[i].load(std::memory_order_relaxed) < bound(i);
        },
        [&](std::size_t i) {
          // Values only rise toward the fixpoint; fetch-max guards against
          // a concurrent advance writing a fresher (higher) bound.
          atomic_fetch_max(G[i], bound(i));
        });
    ASSERT_TRUE(s.converged) << "seed " << seed;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(G[i].load(), expected[i]) << "seed " << seed << " i " << i;
    }
  }
}

TEST_P(LlpSolver, NonConvergenceHitsSweepCapInsteadOfHanging) {
  // A predicate that is never satisfied (not lattice-linear / no top).
  std::atomic<std::uint64_t> counter{0};
  LlpOptions opts;
  opts.max_sweeps = 10;
  const LlpStats s = llp_solve(
      pool_, 4, [&](std::size_t) { return true; },
      [&](std::size_t) { counter.fetch_add(1); }, opts);
  EXPECT_FALSE(s.converged);
  EXPECT_EQ(s.sweeps, 10u);
  EXPECT_EQ(s.advances, 40u);
}

}  // namespace
}  // namespace llpmst
