#include "llp/llp_stable_marriage.hpp"

#include <atomic>
#include <numeric>

#include "parallel/atomic_utils.hpp"
#include "parallel/parallel_for.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace llpmst {

namespace {

/// Packs (woman's rank of the proposer, proposer id): atomic-min over these
/// keeps each woman's best-ever proposer in one word.
std::uint64_t pack_proposal(std::uint32_t rank, std::uint32_t man) {
  return (static_cast<std::uint64_t>(rank) << 32) | man;
}

}  // namespace

MarriageInstance random_marriage_instance(std::size_t n, std::uint64_t seed) {
  LLPMST_CHECK(n >= 1);
  MarriageInstance inst;
  inst.n = n;
  inst.men_pref.resize(n);
  inst.women_rank.resize(n);
  Xoshiro256 rng(seed);

  std::vector<std::uint32_t> perm(n);
  for (std::size_t m = 0; m < n; ++m) {
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t i = n - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.next_below(i + 1)]);
    }
    inst.men_pref[m] = perm;
  }
  for (std::size_t w = 0; w < n; ++w) {
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t i = n - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.next_below(i + 1)]);
    }
    // perm is w's preference order; invert to rank form.
    inst.women_rank[w].resize(n);
    for (std::uint32_t r = 0; r < n; ++r) inst.women_rank[w][perm[r]] = r;
  }
  return inst;
}

MarriageResult llp_stable_marriage(const MarriageInstance& inst,
                                   Executor& pool) {
  const std::size_t n = inst.n;

  // G[m]: index into m's preference list.  best[w]: the best (lowest-rank)
  // proposal woman w has EVER received, maintained by atomic min — once a
  // better proposer appears, worse men are permanently rejected, which is
  // exactly Gale-Shapley's invariant and what makes the predicate
  // lattice-linear (a rejected man stays rejected whatever others do).
  std::vector<std::atomic<std::uint32_t>> G(n);
  std::vector<std::atomic<std::uint64_t>> best(n);
  parallel_for(pool, 0, n, [&](std::size_t i) {
    G[i].store(0, std::memory_order_relaxed);
    best[i].store(~std::uint64_t{0}, std::memory_order_relaxed);
  });
  parallel_for(pool, 0, n, [&](std::size_t m) {
    const std::uint32_t w = inst.men_pref[m][0];
    atomic_fetch_min(best[w],
                     pack_proposal(inst.women_rank[w][m],
                                   static_cast<std::uint32_t>(m)));
  });

  const auto my_pack = [&](std::size_t m) {
    const std::uint32_t w =
        inst.men_pref[m][G[m].load(std::memory_order_relaxed)];
    return std::pair<std::uint32_t, std::uint64_t>{
        w, pack_proposal(inst.women_rank[w][m],
                         static_cast<std::uint32_t>(m))};
  };

  // Worst case one advance per sweep and O(n^2) total proposals, so the
  // default 4n cap is too tight for adversarial instances.
  LlpOptions opts;
  opts.max_sweeps = static_cast<std::uint64_t>(n) * n + 16;

  MarriageResult out;
  out.llp = llp_solve(
      pool, n,
      [&](std::size_t m) {
        // forbidden(m): the woman m currently proposes to has seen someone
        // better, so this G[m] can never be part of a feasible vector.
        const auto [w, mine] = my_pack(m);
        return best[w].load(std::memory_order_relaxed) < mine;
      },
      [&](std::size_t m) {
        // advance(m): propose to the next woman on the list.
        const std::uint32_t next = G[m].load(std::memory_order_relaxed) + 1;
        LLPMST_CHECK_MSG(next < n,
                         "man exhausted his list: instance has no perfect "
                         "matching (impossible with full preference lists)");
        G[m].store(next, std::memory_order_relaxed);
        const auto [w, mine] = my_pack(m);
        atomic_fetch_min(best[w], mine);
      },
      opts);
  LLPMST_CHECK_MSG(out.llp.converged,
                   "LLP stable marriage failed to converge");

  out.wife.resize(n);
  for (std::size_t m = 0; m < n; ++m) {
    out.wife[m] = inst.men_pref[m][G[m].load(std::memory_order_relaxed)];
  }
  return out;
}

std::vector<std::uint32_t> gale_shapley(const MarriageInstance& inst) {
  const std::size_t n = inst.n;
  std::vector<std::uint32_t> next(n, 0);   // next proposal index per man
  std::vector<std::uint32_t> husband(n, ~0u);
  std::vector<std::uint32_t> wife(n, ~0u);
  std::vector<std::uint32_t> free_men(n);
  std::iota(free_men.begin(), free_men.end(), 0u);

  while (!free_men.empty()) {
    const std::uint32_t m = free_men.back();
    free_men.pop_back();
    const std::uint32_t w = inst.men_pref[m][next[m]++];
    if (husband[w] == ~0u) {
      husband[w] = m;
      wife[m] = w;
    } else if (inst.women_rank[w][m] < inst.women_rank[w][husband[w]]) {
      wife[husband[w]] = ~0u;
      free_men.push_back(husband[w]);
      husband[w] = m;
      wife[m] = w;
    } else {
      free_men.push_back(m);
    }
  }
  return wife;
}

bool is_stable_matching(const MarriageInstance& inst,
                        const std::vector<std::uint32_t>& wife) {
  const std::size_t n = inst.n;
  if (wife.size() != n) return false;
  std::vector<std::uint32_t> husband(n, ~0u);
  for (std::size_t m = 0; m < n; ++m) {
    if (wife[m] >= n || husband[wife[m]] != ~0u) return false;  // not perfect
    husband[wife[m]] = static_cast<std::uint32_t>(m);
  }
  // Blocking pair: m prefers w to wife[m] AND w prefers m to husband[w].
  for (std::size_t m = 0; m < n; ++m) {
    for (const std::uint32_t w : inst.men_pref[m]) {
      if (w == wife[m]) break;  // all following women are worse for m
      if (inst.women_rank[w][m] < inst.women_rank[w][husband[w]]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace llpmst
