// RAII nested phase timing.
//
//   {
//     obs::PhaseTimer t("llp_prim_parallel");
//     ...
//     { obs::PhaseTimer f("heap_flush"); flush(); }   // -> "llp_prim_parallel/heap_flush"
//   }
//
// Phases nest per thread: the recorded name is the '/'-joined path of all
// live PhaseTimers on the current thread, which is how coarse algorithm
// spans ("llp_prim_parallel") and their inner stages ("heap_flush") line up
// in reports and traces without threading a prefix through every call.
//
// Cost: when both gates are off (the default), construction is two relaxed
// loads and a branch — safe inside per-round loops.  When obs::enabled(),
// each scope is two clock reads plus one mutex-guarded aggregate update at
// scope exit, so place timers at round/phase granularity, not per element.
// Completed scopes also become trace "X" events while a trace is collecting.
//
// When only obs::phase_stack_enabled() is on (the sampling profiler's
// attribution mode), each scope maintains the per-thread phase stack the
// SIGPROF handler reads — a handful of relaxed/release stores, no clocks,
// no allocation — and records nothing else.
#pragma once

#include "obs/metrics.hpp"

namespace llpmst::obs {

#if LLPMST_OBS

class PhaseTimer {
 public:
  /// `name` must outlive the scope (string literals in practice).
  explicit PhaseTimer(const char* name) {
    if (enabled()) {
      mode_ = kFull;
      detail::phase_push(name);
      start_us_ = now_us();
    } else if (phase_stack_enabled()) {
      mode_ = kStackOnly;
      detail::phase_push(name);
    }
  }
  ~PhaseTimer() {
    if (mode_ == kFull) {
      detail::phase_pop(start_us_);
    } else if (mode_ == kStackOnly) {
      detail::phase_pop_fast();
    }
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  enum Mode : unsigned char { kOff, kStackOnly, kFull };
  Mode mode_ = kOff;
  std::uint64_t start_us_ = 0;
};

#else

class PhaseTimer {
 public:
  explicit PhaseTimer(const char*) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
};

#endif  // LLPMST_OBS

}  // namespace llpmst::obs
