// google-benchmark microbenchmarks for the data-structure substrate: the
// heaps behind the Prim family and union-find behind Kruskal/verifier.
#include <benchmark/benchmark.h>

#include <vector>

#include "ds/binary_heap.hpp"
#include "ds/concurrent_union_find.hpp"
#include "ds/dary_heap.hpp"
#include "ds/lazy_heap.hpp"
#include "ds/pairing_heap.hpp"
#include "ds/union_find.hpp"
#include "support/random.hpp"

namespace {

using namespace llpmst;

/// Pre-generated (id, key) workload shared by the heap benches.
const std::vector<std::pair<std::uint32_t, std::uint64_t>>& workload(
    std::size_t n) {
  static std::vector<std::pair<std::uint32_t, std::uint64_t>> data = [] {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> d;
    Xoshiro256 rng(42);
    d.reserve(1 << 16);
    for (std::size_t i = 0; i < (1u << 16); ++i) {
      d.emplace_back(static_cast<std::uint32_t>(i),
                     rng.next_below(1ull << 40));
    }
    return d;
  }();
  (void)n;
  return data;
}

template <typename Heap>
void bm_heap_push_pop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& data = workload(n);
  for (auto _ : state) {
    Heap h(n);
    for (std::size_t i = 0; i < n; ++i) h.push(data[i].first, data[i].second);
    while (!h.empty()) benchmark::DoNotOptimize(h.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}

void bm_heap_decrease_key(benchmark::State& state) {
  // Dijkstra-like mix on the indexed binary heap: push once, adjust often.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& data = workload(n);
  for (auto _ : state) {
    BinaryHeap<std::uint64_t> h(n);
    for (std::size_t i = 0; i < n; ++i) h.push(data[i].first, data[i].second);
    for (std::size_t i = 0; i < n; ++i) {
      h.insert_or_adjust(data[i].first, data[i].second / 2);
    }
    while (!h.empty()) benchmark::DoNotOptimize(h.pop());
  }
}

void bm_union_find(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(7);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    pairs.emplace_back(static_cast<std::uint32_t>(rng.next_below(n)),
                       static_cast<std::uint32_t>(rng.next_below(n)));
  }
  for (auto _ : state) {
    UnionFind uf(n);
    for (const auto& [a, b] : pairs) benchmark::DoNotOptimize(uf.unite(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pairs.size()));
}

void bm_concurrent_union_find_sequential(benchmark::State& state) {
  // Single-threaded cost of the CAS-based UF (the concurrency tax).
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(7);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(2 * n);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    pairs.emplace_back(static_cast<std::uint32_t>(rng.next_below(n)),
                       static_cast<std::uint32_t>(rng.next_below(n)));
  }
  for (auto _ : state) {
    ConcurrentUnionFind uf(n);
    for (const auto& [a, b] : pairs) benchmark::DoNotOptimize(uf.unite(a, b));
  }
}

}  // namespace

BENCHMARK_TEMPLATE(bm_heap_push_pop, llpmst::BinaryHeap<std::uint64_t>)
    ->Arg(1 << 14)
    ->Name("heap_push_pop/binary");
BENCHMARK_TEMPLATE(bm_heap_push_pop, llpmst::DaryHeap<std::uint64_t, 4>)
    ->Arg(1 << 14)
    ->Name("heap_push_pop/dary4");
BENCHMARK_TEMPLATE(bm_heap_push_pop, llpmst::DaryHeap<std::uint64_t, 8>)
    ->Arg(1 << 14)
    ->Name("heap_push_pop/dary8");
BENCHMARK_TEMPLATE(bm_heap_push_pop, llpmst::PairingHeap<std::uint64_t>)
    ->Arg(1 << 14)
    ->Name("heap_push_pop/pairing");
BENCHMARK_TEMPLATE(bm_heap_push_pop, llpmst::LazyHeap<std::uint64_t>)
    ->Arg(1 << 14)
    ->Name("heap_push_pop/lazy");
BENCHMARK(bm_heap_decrease_key)->Arg(1 << 14);
BENCHMARK(bm_union_find)->Arg(1 << 15);
BENCHMARK(bm_concurrent_union_find_sequential)->Arg(1 << 15);

BENCHMARK_MAIN();
