// Parallel LLP-Prim ("LLP-Prim" in the paper's Figs. 3-4): the early-fixing
// algorithm with the R set drained by the whole thread team.
//
// Parallel structure per super-step:
//   * the current frontier (a snapshot of R) is processed in parallel;
//     fixing a vertex is a CAS claim on its fixed flag; tentative distances
//     are atomic fetch-mins on the packed (priority) word, whose low half
//     *is* the parent edge id — one word carries both `d` and `parent`;
//   * newly fixed vertices go into per-worker bag buffers (no contention);
//     vertices whose distance improved go into per-worker Q buffers;
//   * when R drains, one thread flushes Q into the binary heap and pops the
//     next nearest non-fixed vertex — the sequential bottleneck the paper
//     acknowledges, which is why LLP-Prim wins at low core counts and
//     plateaus around 8 threads (Fig. 3).
//
// The result is the same unique MST for every thread count.
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

/// Runs on ctx.executor().  ctx.cancel_token() (when set) is polled once per
/// super-step; a triggered token (or the "llp_prim/handoff" failpoint)
/// stops the run early with result.stats.outcome != kOk and a PARTIAL edge
/// set — callers must check the outcome before trusting the forest
/// (mst::auto does, and falls back).
[[nodiscard]] MstResult llp_prim_parallel(const CsrGraph& g, RunContext& ctx,
                                          VertexId root = 0);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm llp_prim_parallel_algorithm();

}  // namespace llpmst
