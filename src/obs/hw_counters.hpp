// Hardware performance counters via Linux perf_event_open.
//
// A process-wide event group — cycles, instructions, cache-references,
// cache-misses, branch-misses (grouped, so their ratios are co-scheduled
// and consistent) plus task-clock (software, always schedulable) — opened
// with `inherit` so ThreadPool workers spawned after hw_begin() are
// counted too.
//
//   std::string why;
//   if (obs::hw_begin(&why)) { run(); HwSample s = obs::hw_read(); }
//   else                     { /* s.available == false, reason in `why` */ }
//
// Degradation contract (see docs/observability.md): hw_begin() NEVER
// fails the run.  When the syscall is denied (containers, seccomp,
// perf_event_paranoid) or the PMU is absent (many VMs), it returns false
// with a human-readable reason, and every subsequent hw_read() returns a
// sample with `available == false` carrying the same reason — the run
// report serializes that as the explicit "unavailable" shape instead of
// silently dropping the section.
//
// ScopedHwCounters attributes counter deltas to the PhaseTimer phase path
// live on the calling thread at scope entry (falling back to its label
// outside any phase); snapshot_hw_phases() returns the aggregates.  Each
// scope costs ~a dozen read() syscalls, so place them at algorithm/round
// granularity, never per element.
//
// With LLPMST_OBS=0 everything here compiles to no-ops and
// ScopedHwCounters is an empty class (static-asserted in tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace llpmst::obs {

/// Sentinel for an individual counter that could not be opened (reported
/// as JSON null) while the group as a whole is available.
inline constexpr std::uint64_t kHwAbsent = ~std::uint64_t{0};

/// One multiplex-scaled reading of the group.  Always defined (both build
/// flavours) so reports serialize uniformly.
struct HwSample {
  bool available = false;
  std::string unavailable_reason;  // non-empty iff !available

  std::uint64_t cycles = kHwAbsent;
  std::uint64_t instructions = kHwAbsent;
  std::uint64_t cache_references = kHwAbsent;
  std::uint64_t cache_misses = kHwAbsent;
  std::uint64_t branch_misses = kHwAbsent;
  double task_clock_ms = -1.0;  // < 0 means absent

  /// min(time_running / time_enabled) across the open events; < 1.0 means
  /// the kernel multiplexed the PMU and values are extrapolated.
  double multiplex_ratio = 1.0;
};

/// Per-phase-path aggregate of ScopedHwCounters deltas.
struct HwPhaseSample {
  std::string name;   // the PhaseTimer path (or the scope's label)
  std::uint64_t count = 0;
  HwSample totals;    // summed deltas; `available` is always true here
};

#if LLPMST_OBS

/// Opens and enables the group.  Idempotent; returns true when counting.
/// On failure returns false, stores the reason in *why (may be null), and
/// leaves the subsystem in the explicit-unavailable state.
bool hw_begin(std::string* why);

/// Disables and closes the group (reads after this return unavailable).
void hw_end();

/// True between a successful hw_begin() and hw_end().
[[nodiscard]] bool hw_active();

/// Cumulative counts since hw_begin() (whole process, multiplex-scaled).
/// When inactive, returns the unavailable shape with the begin-failure
/// reason (or "hardware counters not started").
[[nodiscard]] HwSample hw_read();

/// Test/ops hook: forces hw_begin() to take the unavailable path (also
/// triggered by the LLPMST_HW_DISABLE=1 environment variable).
void hw_force_unavailable(bool forced);

/// Phase-attributed aggregates collected by ScopedHwCounters, sorted by
/// path.  hw_reset_phases() clears them.
[[nodiscard]] std::vector<HwPhaseSample> snapshot_hw_phases();
void hw_reset_phases();

namespace detail {
/// Raw scaled per-event values for delta computation; mask bit i set when
/// event i is open.
struct HwRaw {
  std::uint64_t v[6] = {0, 0, 0, 0, 0, 0};
  std::uint32_t mask = 0;
};
[[nodiscard]] HwRaw hw_read_raw();
void hw_fold_phase(const char* label, const HwRaw& start, const HwRaw& end);
}  // namespace detail

/// RAII delta: reads the group at entry and exit, folds the difference
/// into the aggregate for the current PhaseTimer path.  Free when the
/// group is not active.
class ScopedHwCounters {
 public:
  explicit ScopedHwCounters(const char* label) {
    if (hw_active()) {
      label_ = label;
      start_ = detail::hw_read_raw();
    }
  }
  ~ScopedHwCounters() {
    if (label_ != nullptr) {
      detail::hw_fold_phase(label_, start_, detail::hw_read_raw());
    }
  }

  ScopedHwCounters(const ScopedHwCounters&) = delete;
  ScopedHwCounters& operator=(const ScopedHwCounters&) = delete;

 private:
  const char* label_ = nullptr;  // null when inactive at construction
  detail::HwRaw start_;
};

#else  // !LLPMST_OBS — all no-ops; ScopedHwCounters stays empty.

inline bool hw_begin(std::string* why) {
  if (why != nullptr) *why = "observability compiled out (LLPMST_OBS=0)";
  return false;
}
inline void hw_end() {}
[[nodiscard]] inline bool hw_active() { return false; }
[[nodiscard]] inline HwSample hw_read() {
  HwSample s;
  s.unavailable_reason = "observability compiled out (LLPMST_OBS=0)";
  return s;
}
inline void hw_force_unavailable(bool) {}
[[nodiscard]] inline std::vector<HwPhaseSample> snapshot_hw_phases() {
  return {};
}
inline void hw_reset_phases() {}

class ScopedHwCounters {
 public:
  explicit ScopedHwCounters(const char*) {}
  ScopedHwCounters(const ScopedHwCounters&) = delete;
  ScopedHwCounters& operator=(const ScopedHwCounters&) = delete;
};

#endif  // LLPMST_OBS

}  // namespace llpmst::obs
