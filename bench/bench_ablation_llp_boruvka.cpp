// Ablation: what do LLP-Boruvka's design choices buy over the synchronized
// baseline, and what does the adaptive runtime buy over fixed scheduling?
// Sweeps the engine knobs independently:
//   * pointer jumping: asynchronous/chaotic (LLP, with full path
//     compression) vs bulk-synchronous rounds with barriers (baseline);
//   * contraction dedup: keep parallel bundles (LLP) vs hash bundle-min
//     filtering (baseline);
//   * load balance: adaptive grain vs work stealing vs fixed chunks;
//   * scratch: fresh per run vs caller-owned reuse across repetitions.
// Reports wall time, rounds, and pointer-jump counts per configuration.
// Every row gets a distinct algo label so --bench-json record keys stay
// unique (bench_compare.py rejects duplicates).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/run_context.hpp"
#include "llp/llp_boruvka.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_ablation_llp_boruvka",
                "Ablation of LLP-Boruvka vs synchronized Boruvka engine "
                "knobs");
  auto& road_side = cli.add_int("road-side", 512, "road grid side length");
  auto& scale = cli.add_int("scale", 16, "graph500 RMAT scale");
  auto& threads = cli.add_int("threads", 8, "worker threads");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  BenchOptions opts;
  opts.repetitions = static_cast<int>(reps);
  ThreadPool pool(static_cast<std::size_t>(threads));
  RunContext ctx(pool);

  Table t({"Graph", "Jumping", "Dedup", "LoadBalance", "Scratch", "Median",
           "Rounds", "PointerJumps"});

  const Workload workloads[] = {
      make_road_workload(static_cast<std::uint32_t>(road_side)),
      make_graph500_workload(static_cast<int>(scale), 1, /*connect=*/false),
  };

  const auto lb_name = [](BoruvkaLoadBalance lb) {
    switch (lb) {
      case BoruvkaLoadBalance::kAdaptive:
        return "adaptive";
      case BoruvkaLoadBalance::kWorkStealing:
        return "stealing";
      case BoruvkaLoadBalance::kFixedChunk:
        return "fixed";
    }
    return "?";
  };

  for (const Workload& w : workloads) {
    const MstResult reference = kruskal(w.graph);
    set_bench_context(w.name, static_cast<std::size_t>(threads));

    const auto run_config = [&](const BoruvkaConfig& config,
                                BoruvkaScratch* scratch) {
      const char* jumping_cell =
          config.jumping == PointerJumping::kAsynchronous ? "async (LLP)"
                                                          : "synchronized";
      const std::string algo =
          std::string("engine jump=") +
          (config.jumping == PointerJumping::kAsynchronous ? "async" : "sync") +
          " dedup=" + (config.dedup_contracted_edges ? "1" : "0") +
          " lb=" + lb_name(config.load_balance) +
          " scratch=" + (scratch != nullptr ? "reuse" : "fresh");
      BoruvkaConfig run = config;
      run.scratch = scratch;
      const BenchMeasurement m = measure_mst(
          algo, w.graph, reference,
          [&] { return llp_boruvka_configured(w.graph, ctx, run); }, opts);
      const MstAlgoStats& s = m.last_result.stats;
      t.add_row({w.name, jumping_cell,
                 config.dedup_contracted_edges ? "yes" : "no",
                 lb_name(config.load_balance),
                 scratch != nullptr ? "reuse" : "fresh", time_cell(m.time_ms),
                 format_count(s.rounds), format_count(s.pointer_jumps)});
    };

    // Axis 1: the paper's knobs (jumping x dedup) at the default runtime.
    for (const auto jumping :
         {PointerJumping::kAsynchronous, PointerJumping::kSynchronized}) {
      for (const bool dedup : {false, true}) {
        BoruvkaConfig config;
        config.jumping = jumping;
        config.dedup_contracted_edges = dedup;
        run_config(config, nullptr);
      }
    }

    // Axis 2: the runtime knobs (scheduling policy, scratch reuse) at the
    // LLP-Boruvka configuration.  The adaptive/reuse row is what
    // llp_boruvka() would do with a persistent scratch; fixed/fresh is the
    // pre-adaptive runtime.
    BoruvkaScratch reused;
    for (const auto lb :
         {BoruvkaLoadBalance::kAdaptive, BoruvkaLoadBalance::kWorkStealing,
          BoruvkaLoadBalance::kFixedChunk}) {
      BoruvkaConfig config;
      config.load_balance = lb;
      run_config(config, nullptr);
      run_config(config, &reused);
    }
  }

  std::printf("Ablation: LLP-Boruvka engine knobs (threads=%lld)\n",
              static_cast<long long>(threads));
  std::printf("(async+no-dedup = LLP-Boruvka; synchronized+dedup = the "
              "parallel Boruvka baseline)\n\n");
  t.print(csv);
  obs_cli.write_table(t);
  obs_cli.finish("bench_ablation_llp_boruvka");
  return 0;
}
