// Generic Lattice Linear Predicate (LLP) detection engine — the paper's
// Algorithm 1.
//
// The combinatorial problem is modelled as finding the least vector G in a
// lattice that satisfies a lattice-linear predicate B.  The caller supplies,
// per index j:
//   forbidden(j) — true if G cannot satisfy B unless G[j] advances;
//   advance(j)   — move G[j] up (must make progress toward not-forbidden).
//
// The engine repeatedly sweeps all indices, advancing every forbidden one,
// until a full sweep finds none ("no element is forbidden, we have our
// solution").  Sweeps run sequentially or data-parallel over a ThreadPool;
// lattice-linearity guarantees that concurrently advancing distinct
// forbidden indices is safe, which is why no locking appears here — the
// caller's advance() must only touch G[j] (plus reads of other entries).
//
// The MST algorithms specialize this loop with bespoke scheduling (worklists
// instead of full sweeps) for efficiency; llp_components and
// llp_shortest_path use this engine directly, demonstrating the framework's
// claim that one harness solves many problems.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/round_stats.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/executor.hpp"
#include "support/cancel.hpp"
#include "support/failpoint.hpp"
#include "support/status.hpp"

namespace llpmst {

struct LlpStats {
  std::uint64_t sweeps = 0;    // full passes over the index space
  std::uint64_t advances = 0;  // total advance() calls
  /// Why the loop stopped: kOk (fixpoint reached), kNonConverged (sweep cap),
  /// kCancelled / kDeadlineExceeded (CancelToken), kInjectedFault (failpoint).
  RunOutcome outcome = RunOutcome::kOk;
  bool converged = false;      // mirror of outcome == kOk, kept for callers
};

struct LlpOptions {
  /// Safety cap on sweeps; 0 means "4 * n + 16" (every problem we instantiate
  /// converges well below that — the cap converts a buggy predicate into a
  /// diagnosable non-convergence instead of a hang).
  std::uint64_t max_sweeps = 0;
  /// Optional cooperative cancellation: polled before every sweep and, while
  /// a sweep runs, between parallel_for chunks — a watchdog deadline stops
  /// even a wedged or non-converging run at chunk granularity.
  const CancelToken* cancel = nullptr;
};

/// Runs Algorithm 1 over indices [0, n).  Returns statistics; `converged`
/// is true when a full sweep found no forbidden index, and `outcome` says
/// why the loop stopped otherwise.  A cancelled or faulted run leaves G in
/// a sound intermediate lattice state (below or at the fixpoint) — partial,
/// not corrupt.
template <typename Forbidden, typename Advance>
LlpStats llp_solve(Executor& pool, std::size_t n, Forbidden&& forbidden,
                   Advance&& advance, const LlpOptions& options = {}) {
  LlpStats stats;
  const std::uint64_t cap =
      options.max_sweeps != 0 ? options.max_sweeps : 4 * n + 16;

  obs::PhaseTimer solve_span("llp_solve");
  // Per-sweep round telemetry (schema-v3 "rounds"): label is left empty so
  // record_round() attributes the sweep to the caller's nested phase path.
  const bool rounds_on = obs::kCompiledIn && obs::enabled();
  std::atomic<std::uint64_t> advanced{0};
  for (;;) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      stats.outcome = options.cancel->reason();
      break;
    }
    if (stats.sweeps >= cap) {
      stats.outcome = RunOutcome::kNonConverged;
      break;
    }
    // Chaos hook: one evaluation per sweep.  Sleep/yield stretches the
    // window between sweeps (exposing schedule assumptions); a failure spec
    // stops the solve with a structured outcome.
    if (LLPMST_FAILPOINT("llp/sweep") != fail::Action::kNone) {
      stats.outcome = RunOutcome::kInjectedFault;
      break;
    }
    ++stats.sweeps;
    advanced.store(0, std::memory_order_relaxed);
    const std::uint64_t sweep_t0 = rounds_on ? obs::now_us() : 0;
    {
      // Per-sweep span ("llp_solve/sweep"): one enabled() check when obs is
      // idle, a real span in traces — this is the per-sweep visibility the
      // Algorithm 1 analysis needs.
      obs::PhaseTimer sweep_span("sweep");
      const auto body = [&](std::size_t j) {
        // Re-testing forbidden(j) right before advancing is the whole
        // synchronization story: lattice-linearity makes a stale "forbidden"
        // verdict impossible (forbidden states stay forbidden until
        // advanced) and advancing only G[j] keeps indices independent.
        std::uint64_t local = 0;
        if (forbidden(j)) {
          advance(j);
          ++local;
        }
        if (local != 0) advanced.fetch_add(local, std::memory_order_relaxed);
      };
      if (options.cancel != nullptr) {
        if (!parallel_for_interruptible(pool, 0, n, *options.cancel, body)) {
          stats.advances += advanced.load(std::memory_order_relaxed);
          stats.outcome = options.cancel->reason();
          break;
        }
      } else {
        parallel_for(pool, 0, n, body);
      }
    }
    const std::uint64_t a = advanced.load(std::memory_order_relaxed);
    stats.advances += a;
    if (rounds_on) {
      obs::RoundRecord r;
      r.round = stats.sweeps;
      r.edges = n;  // full-sweep engine: the whole index space is scanned
      r.advances = a;
      r.wall_ms = static_cast<double>(obs::now_us() - sweep_t0) * 1e-3;
      obs::record_round(std::move(r));
    }
    if (a == 0) break;  // outcome stays kOk: we have our solution
  }
  stats.converged = (stats.outcome == RunOutcome::kOk);
  if (obs::kCompiledIn) {
    obs::counter("llp_solve/sweeps").add(stats.sweeps);
    obs::counter("llp_solve/advances").add(stats.advances);
    if (stats.outcome == RunOutcome::kNonConverged) {
      obs::counter("llp_solve/cap_hits").increment();
    } else if (stats.outcome == RunOutcome::kCancelled ||
               stats.outcome == RunOutcome::kDeadlineExceeded) {
      obs::counter("llp_solve/cancellations").increment();
    } else if (stats.outcome == RunOutcome::kInjectedFault) {
      obs::counter("llp_solve/injected_faults").increment();
    }
  }
  return stats;
}

}  // namespace llpmst
