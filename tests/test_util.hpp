// Shared helpers for the llpmst test suite.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/run_context.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "mst/mst_result.hpp"
#include "mst/registry.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst::test {

/// Builds a CSR graph from an already-normalized edge list.
inline CsrGraph csr(const EdgeList& list) { return CsrGraph::build(list); }

/// Named MSF algorithm for sweep-style tests.  `connected_only` marks the
/// Prim family, which requires connected inputs.
struct MsfAlgo {
  std::string name;
  bool connected_only;
  std::function<MstResult(const CsrGraph&, ThreadPool&)> run;
};

/// Every MSF implementation in the library, all expected to produce the
/// identical (unique) forest.  Driven by the registry: a newly registered
/// algorithm is swept by these tests with zero edits here, and
/// `connected_only` comes straight from its capability flags.
inline std::vector<MsfAlgo> all_msf_algorithms() {
  std::vector<MsfAlgo> out;
  for (const MstAlgorithm& a : mst_algorithms()) {
    out.push_back({a.name, !a.caps.msf_capable,
                   [algo = &a](const CsrGraph& g, ThreadPool& pool) {
                     RunContext ctx(pool);
                     return algo->run(g, ctx);
                   }});
  }
  return out;
}

}  // namespace llpmst::test
