// LLP market clearing prices (GDS auction): clearing + exact minimality
// against brute force on small instances.
#include <gtest/gtest.h>

#include <vector>

#include "llp/llp_market_clearing.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst {
namespace {

/// Brute-force minimum clearing vector over [0, cap]^n (tiny n only).
std::vector<std::uint32_t> brute_force_min_clearing(
    const MarketInstance& inst, std::uint32_t cap) {
  const std::size_t n = inst.n;
  std::vector<std::uint32_t> p(n, 0), best;
  // The clearing set is a lattice, so the coordinate-wise meet of all
  // clearing vectors is the minimum; enumerate and meet.
  for (;;) {
    if (is_clearing(inst, p)) {
      if (best.empty()) {
        best = p;
      } else {
        for (std::size_t i = 0; i < n; ++i) best[i] = std::min(best[i], p[i]);
      }
    }
    // Odometer increment.
    std::size_t i = 0;
    while (i < n && p[i] == cap) p[i++] = 0;
    if (i == n) break;
    ++p[i];
  }
  return best;
}

class LlpMarket : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
};
INSTANTIATE_TEST_SUITE_P(Threads, LlpMarket, testing::Values(1, 4));

TEST_P(LlpMarket, TextbookExample) {
  // Classic 3x3 example (values chosen so prices must rise).
  MarketInstance inst;
  inst.n = 3;
  inst.value = {{4, 12, 5}, {7, 10, 9}, {7, 7, 10}};
  const MarketResult r = llp_market_clearing(inst, pool_);
  EXPECT_TRUE(is_clearing(inst, r.price));
  EXPECT_EQ(r.price, brute_force_min_clearing(inst, 12));
}

TEST_P(LlpMarket, AllSameValuations) {
  // Every buyer values every item identically: zero prices already clear
  // (any perfect matching works).
  MarketInstance inst;
  inst.n = 4;
  inst.value.assign(4, std::vector<std::uint32_t>(4, 5));
  const MarketResult r = llp_market_clearing(inst, pool_);
  EXPECT_EQ(r.price, std::vector<std::uint32_t>(4, 0));
  EXPECT_EQ(r.advances, 0u);
}

TEST_P(LlpMarket, SingleHotItemPricesUp) {
  // Both buyers want only item 0 (value 10 vs 0): its price must rise until
  // one buyer switches; minimum clearing price of item 0 is exactly 10.
  MarketInstance inst;
  inst.n = 2;
  inst.value = {{10, 0}, {10, 0}};
  const MarketResult r = llp_market_clearing(inst, pool_);
  EXPECT_TRUE(is_clearing(inst, r.price));
  EXPECT_EQ(r.price[0], 10u);
  EXPECT_EQ(r.price[1], 0u);
}

TEST_P(LlpMarket, MatchesBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const MarketInstance inst = random_market_instance(3, 4, seed);
    const MarketResult r = llp_market_clearing(inst, pool_);
    ASSERT_TRUE(is_clearing(inst, r.price)) << "seed " << seed;
    ASSERT_EQ(r.price, brute_force_min_clearing(inst, 5)) << "seed " << seed;
  }
}

TEST_P(LlpMarket, AssignmentIsAPermutationOfDemandedItems) {
  const MarketInstance inst = random_market_instance(12, 30, 5);
  const MarketResult r = llp_market_clearing(inst, pool_);
  std::vector<bool> sold(inst.n, false);
  for (std::size_t b = 0; b < inst.n; ++b) {
    const std::uint32_t i = r.assignment[b];
    ASSERT_LT(i, inst.n);
    ASSERT_FALSE(sold[i]);
    sold[i] = true;
    // The assigned item must be utility-maximal for the buyer.
    const std::int64_t got = static_cast<std::int64_t>(inst.value[b][i]) -
                             static_cast<std::int64_t>(r.price[i]);
    for (std::size_t j = 0; j < inst.n; ++j) {
      const std::int64_t alt = static_cast<std::int64_t>(inst.value[b][j]) -
                               static_cast<std::int64_t>(r.price[j]);
      ASSERT_LE(alt, got) << "buyer " << b << " envies item " << j;
    }
  }
}

TEST_P(LlpMarket, LargerRandomInstanceClears) {
  const MarketInstance inst = random_market_instance(40, 100, 9);
  const MarketResult r = llp_market_clearing(inst, pool_);
  EXPECT_TRUE(is_clearing(inst, r.price));
  EXPECT_GE(r.rounds, 1u);
}

TEST(MarketHelpers, IsClearingRejectsWrongSize) {
  const MarketInstance inst = random_market_instance(3, 5, 1);
  EXPECT_FALSE(is_clearing(inst, {0, 0}));
}

}  // namespace
}  // namespace llpmst
