// Quickstart: build a small weighted graph, compute its MST with every
// algorithm in the registry, and verify the result.
//
//   $ ./examples/quickstart
//
// This walks the exact graph from Fig. 1 of the paper, so the output can be
// followed against Section IV/V by hand.  The algorithm list comes from
// mst_algorithms() — an algorithm added to the registry shows up here (and
// in mst_tool --list-algos, and in the conformance tests) automatically.
#include <cstdio>

#include "core/run_context.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators/special.hpp"
#include "mst/registry.hpp"
#include "mst/verifier.hpp"
#include "parallel/thread_pool.hpp"

int main() {
  using namespace llpmst;

  // The paper's Fig. 1: vertices a..e, seven weighted edges, unique MST
  // {2, 3, 4, 7} of weight 16.
  const EdgeList list = make_paper_figure1();
  const CsrGraph g = CsrGraph::build(list);

  std::printf("Graph: %zu vertices, %zu edges\n", g.num_vertices(),
              g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge& we = g.edge(e);
    std::printf("  edge %u: %c -- %c  (weight %u)\n", e, 'a' + we.u,
                'a' + we.v, we.w);
  }

  ThreadPool pool(4);
  RunContext ctx(pool);

  std::printf("\nMinimum spanning tree (weight should be 16):\n");
  for (const MstAlgorithm& algo : mst_algorithms()) {
    const MstResult result = algo.run(g, ctx);
    std::printf("  %-20s [%s]  total weight %llu, edges {", algo.label,
                describe_caps(algo.caps).c_str(),
                static_cast<unsigned long long>(result.total_weight));
    for (std::size_t i = 0; i < result.edges.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", g.edge(result.edges[i]).w);
    }
    std::printf("}\n");
    const VerifyResult v = verify_msf(g, result, ctx);
    if (!v.ok) {
      std::printf("  VERIFICATION FAILED: %s\n", v.error.c_str());
      return 1;
    }
  }
  std::printf("\nAll %zu algorithms agree and the tree verified as minimal.\n",
              mst_algorithms().size());
  return 0;
}
