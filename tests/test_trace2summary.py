#!/usr/bin/env python3
"""End-to-end tests for tools/trace2summary.py: synthesizes trace-event
JSON files (plus the committed counter-first regression fixture) and
asserts on the summarizer's output and exit status.

Run directly (python3 tests/test_trace2summary.py) or via ctest; uses only
the standard library.
"""
import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
SUMMARIZE = HERE.parent / "tools" / "trace2summary.py"
COUNTER_FIRST = HERE / "fixtures" / "counter_first.trace.json"


def run_summary(*argv):
    return subprocess.run(
        [sys.executable, str(SUMMARIZE), *map(str, argv)],
        capture_output=True, text=True)


def span(name, ts, dur, pid=0, tid=0):
    return {"name": name, "cat": "llpmst", "ph": "X",
            "ts": ts, "dur": dur, "pid": pid, "tid": tid}


def instant(name, ts, pid=0, tid=0):
    return {"name": name, "cat": "llpmst", "ph": "i",
            "ts": ts, "s": "t", "pid": pid, "tid": tid}


def counter(name, ts, value, tid=0):
    return {"name": name, "cat": "llpmst", "ph": "C",
            "ts": ts, "pid": 0, "tid": tid, "args": {"value": value}}


class Trace2SummaryTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write_trace(self, events, name="t.json"):
        path = self.tmp / name
        path.write_text(json.dumps({"displayTimeUnit": "ms",
                                    "traceEvents": events}))
        return path

    def test_counter_first_fixture_summarizes(self):
        # Regression: a trace whose first record is a counter event (and
        # which carries a non-object metadata entry) must summarize, not
        # crash, and the wall span must cover the counter samples —
        # ts 100..2100 us = 2.000 ms, not just the lone 1.5 ms span.
        r = run_summary(COUNTER_FIRST)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("llp_boruvka/round", r.stdout)
        self.assertIn("2.000 ms", r.stdout)
        self.assertIn("frontier", r.stdout)

    def test_spans_aggregate_by_name(self):
        path = self.write_trace([span("phase_a", 0, 100),
                                 span("phase_a", 200, 300),
                                 span("phase_b", 0, 50)])
        r = run_summary(path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("phase_a", r.stdout)
        # phase_a: 2 spans totalling 400 us = 0.400 ms.
        self.assertIn("0.400", r.stdout)
        self.assertIn("2 distinct phases", r.stdout)

    def test_counters_flag_prints_track_statistics(self):
        path = self.write_trace([span("work", 0, 10),
                                 counter("frontier", 0, 10),
                                 counter("frontier", 5, 99),
                                 counter("frontier", 9, 3)])
        r = run_summary("--counters", path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("frontier", r.stdout)
        self.assertIn("99", r.stdout)  # max
        self.assertIn("3", r.stdout)   # last (by timestamp)

    def test_utilization_reads_scheduler_tracks(self):
        # Two workers under pid 1: worker 0 busy the whole 1000 us span,
        # worker 1 busy half and idle half with one steal.
        path = self.write_trace([
            span("llp_boruvka/round", 0, 1000, pid=0),
            span("sched/task", 0, 1000, pid=1, tid=0),
            span("sched/task", 0, 500, pid=1, tid=1),
            span("sched/idle", 500, 500, pid=1, tid=1),
            instant("sched/steal", 500, pid=1, tid=1),
        ])
        r = run_summary("--utilization", path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        # (1000 + 500) / (1000 * 2 workers) = 75%.
        self.assertIn("utilization 75.0%", r.stdout)
        self.assertIn("2 workers", r.stdout)
        self.assertIn("longest rounds", r.stdout)
        self.assertIn("llp_boruvka/round", r.stdout)

    def test_utilization_without_sched_tracks_reports_and_passes(self):
        # An LLPMST_OBS=0 trace has phases but no pid-1 tracks; the mode
        # must say so and exit 0 so CI can run it unconditionally.
        path = self.write_trace([span("llp_boruvka/round", 0, 1000)])
        r = run_summary("--utilization", path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("no scheduler tracks", r.stdout)

    def test_empty_trace_is_not_an_error(self):
        path = self.write_trace([])
        r = run_summary(path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("no complete", r.stdout)

    def test_unreadable_file_exits_nonzero(self):
        r = run_summary(self.tmp / "absent.json")
        self.assertEqual(r.returncode, 1)
        self.assertIn("error reading", r.stderr)


if __name__ == "__main__":
    unittest.main()
