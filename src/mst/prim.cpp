#include "mst/prim.hpp"

#include "ds/binary_heap.hpp"
#include "mst/prim_heaps.hpp"

namespace llpmst {

MstResult prim(const CsrGraph& g, VertexId root) {
  return prim_with_heap<BinaryHeap<EdgePriority>>(g, root);
}

}  // namespace llpmst
