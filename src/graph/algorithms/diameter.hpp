// Pseudo-diameter estimation by the classic double-sweep BFS: the hop
// eccentricity found from the far endpoint of a first BFS lower-bounds the
// true (unweighted) diameter and is usually tight on road-like graphs.
// Used to characterize workload morphology in the Table I bench: road
// graphs have huge diameters, Kronecker graphs tiny ones — which is exactly
// the structural difference behind the paper's Fig. 2/4 discussion.
#pragma once

#include "graph/csr_graph.hpp"

namespace llpmst {

struct DiameterEstimate {
  /// Hop-count lower bound on the diameter of the component of `start`.
  std::uint32_t hops = 0;
  /// Endpoints realizing the bound.
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
};

/// `sweeps` extra refinement sweeps (each restarts from the farthest vertex
/// found so far; 2 is the classic double sweep).
[[nodiscard]] DiameterEstimate estimate_diameter(const CsrGraph& g,
                                                 VertexId start = 0,
                                                 int sweeps = 2);

}  // namespace llpmst
