// The pluggable storage layer under CsrGraph.
//
// A built CSR snapshot is six flat arrays — row offsets, arc targets, arc
// priorities, per-vertex MWE minima, per-arc MWE flags, and the undirected
// edge list.  Algorithms only ever *read* them through spans, so where the
// bytes live is a storage decision, not an algorithm decision:
//
//   * HeapStorage — the original representation: six owned std::vectors,
//     filled by CsrGraph::build from a normalized EdgeList;
//   * MmapStorage — a read-only mmap over an `llpmstb` binary CSR snapshot
//     (graph/io/binary_csr.hpp).  Load = open + map + header validation;
//     no edge-list parse, no CSR rebuild, and the kernel pages arc data in
//     on demand, so a snapshot larger than resident RAM still serves
//     queries.
//
// Storage is immutable after construction and shared via
// std::shared_ptr<const GraphStorage>: copying a CsrGraph is two pointer
// copies, and the storage object's address doubles as the graph's identity
// for caches (see CsrGraph::storage_id / RunContext::num_components) — two
// CsrGraph handles over one snapshot share cached connectivity.
//
// This seam is deliberately where hugepage- and NUMA-aware placement land
// next (ROADMAP item 3): a MADV_HUGEPAGE / numa_alloc backend implements
// the same section contract without touching a single algorithm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "support/status.hpp"

namespace llpmst {

/// Read-only views of the six CSR arrays.  Span extents encode the shape
/// contract: offsets has n+1 entries, targets/priorities/mwe_flags have 2m
/// (one per directed arc), mwe has n, edges has m.
struct CsrSections {
  std::span<const std::uint64_t> offsets;      // n+1 row offsets into arcs
  std::span<const VertexId> targets;           // 2m arc targets
  std::span<const EdgePriority> priorities;    // 2m packed arc priorities
  std::span<const EdgePriority> mwe;           // n per-vertex min priority
  std::span<const std::uint8_t> mwe_flags;     // 2m per-arc MWE flags
  std::span<const WeightedEdge> edges;         // m undirected edges by id
};

class GraphStorage {
 public:
  GraphStorage() = default;
  GraphStorage(const GraphStorage&) = delete;
  GraphStorage& operator=(const GraphStorage&) = delete;
  virtual ~GraphStorage() = default;

  [[nodiscard]] const CsrSections& sections() const { return sections_; }

  /// "heap" or "mmap" — surfaced in catalog listings and load reports.
  [[nodiscard]] virtual const char* backend_name() const = 0;

  /// Bytes backed by a file mapping (0 for owned-heap storage).
  [[nodiscard]] virtual std::size_t mapped_bytes() const { return 0; }

  /// Estimated bytes of this storage currently resident in RAM.  Exact for
  /// heap storage (everything is), sampled via mincore for mappings.
  [[nodiscard]] virtual std::size_t resident_bytes_estimate() const;

 protected:
  CsrSections sections_;  // set once by the concrete backend's constructor
};

using StoragePtr = std::shared_ptr<const GraphStorage>;

/// The owned-heap backend: six vectors moved in by CsrGraph::build.
class HeapStorage final : public GraphStorage {
 public:
  HeapStorage(std::vector<std::uint64_t> offsets,
              std::vector<VertexId> targets,
              std::vector<EdgePriority> priorities,
              std::vector<EdgePriority> mwe,
              std::vector<std::uint8_t> mwe_flags,
              std::vector<WeightedEdge> edges);

  [[nodiscard]] const char* backend_name() const override { return "heap"; }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<VertexId> targets_;
  std::vector<EdgePriority> priorities_;
  std::vector<EdgePriority> mwe_;
  std::vector<std::uint8_t> mwe_flags_;
  std::vector<WeightedEdge> edges_;
};

/// The read-only mmap backend over an `llpmstb` snapshot file.  Constructed
/// only through graph/io/binary_csr.hpp's read_binary_csr(), which validates
/// the header and computes the section spans before handing them over; this
/// class owns nothing but the mapping itself.
class MmapStorage final : public GraphStorage {
 public:
  /// Takes ownership of an established mapping.  `base` must be a
  /// mmap(2)-returned address of `length` bytes; unmapped on destruction.
  MmapStorage(void* base, std::size_t length, CsrSections sections,
              std::string path);
  ~MmapStorage() override;

  [[nodiscard]] const char* backend_name() const override { return "mmap"; }
  [[nodiscard]] std::size_t mapped_bytes() const override { return length_; }
  [[nodiscard]] std::size_t resident_bytes_estimate() const override;

  /// The snapshot file this mapping came from (diagnostics, catalog rows).
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void* base_ = nullptr;
  std::size_t length_ = 0;
  std::string path_;
};

}  // namespace llpmst
