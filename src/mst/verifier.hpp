// MSF verification.
//
// verify_msf checks, for a claimed minimum spanning forest:
//   1. shape   — every edge id valid and distinct; the edge set is acyclic
//                (union-find); |edges| = n - #components of the input graph;
//   2. spanning— the edge set connects exactly the input's components;
//   3. minimal — the cut property, checked exactly: for every *non-tree*
//                edge (u, v), the maximum edge priority on the u..v path in
//                the forest must be smaller than the non-tree edge's
//                priority (cycle property of MSTs — with unique priorities
//                this certifies the forest is THE minimum one).
//
// The cycle-property check is implemented by rooting each tree and walking
// the two endpoint-to-LCA paths with ancestor hops, O(m * depth) worst case
// but fine at test scale; verify_msf_quick skips it for benchmark-scale
// graphs and checks shape/spanning plus weight equality with a reference.
#pragma once

#include <string>

#include "mst/mst_result.hpp"

namespace llpmst {

class RunContext;

struct VerifyResult {
  bool ok = false;
  std::string error;  // human-readable reason when !ok
};

/// Full verification including the exact minimality (cycle property) check.
[[nodiscard]] VerifyResult verify_msf(const CsrGraph& g, const MstResult& r);

/// Shape + spanning only (no minimality); O(n + m).
[[nodiscard]] VerifyResult verify_spanning_forest(const CsrGraph& g,
                                                  const MstResult& r);

/// Context-aware variants: cross-check the forest's tree count against the
/// RunContext's cached connectivity answer when one exists (an mst::auto run
/// through the same context already computed it — a disagreement fails fast
/// before the edge sweep), and seed the cache from the verifier's own
/// union-find on success so later consumers skip the component sweep
/// entirely.  Verification semantics are otherwise identical.
[[nodiscard]] VerifyResult verify_msf(const CsrGraph& g, const MstResult& r,
                                      RunContext& ctx);
[[nodiscard]] VerifyResult verify_spanning_forest(const CsrGraph& g,
                                                  const MstResult& r,
                                                  RunContext& ctx);

}  // namespace llpmst
