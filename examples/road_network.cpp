// Road-network planning example: which subset of candidate road segments
// should be paved so every intersection is reachable at minimum total cost?
// That is exactly the MST of the candidate-road graph — the motivating
// workload behind the paper's USA-road experiments.
//
//   $ ./examples/road_network --width 400 --height 400
//
// Loads a DIMACS .gr file instead when --input is given (e.g. a real
// USA-road-d file), demonstrating the I/O path the paper's datasets use.
#include <cstdio>

#include "graph/algorithms/degree_stats.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators/road.hpp"
#include "graph/io/dimacs.hpp"
#include "llp/llp_prim.hpp"
#include "mst/verifier.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;

  CliParser cli("road_network",
                "Minimum-cost road paving via LLP-Prim on a synthetic road "
                "network (or a DIMACS .gr file)");
  auto& width = cli.add_int("width", 400, "grid width (intersections)");
  auto& height = cli.add_int("height", 400, "grid height (intersections)");
  auto& seed = cli.add_int("seed", 1, "generator seed");
  auto& input = cli.add_string("input", "", "optional DIMACS .gr file");
  cli.parse(argc, argv);

  EdgeList list;
  if (!input.empty()) {
    std::printf("Loading %s ...\n", input.c_str());
    DimacsResult r = read_dimacs(input);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status.to_string().c_str());
      return 1;
    }
    list = std::move(r.graph);
  } else {
    RoadParams params;
    params.width = static_cast<std::uint32_t>(width);
    params.height = static_cast<std::uint32_t>(height);
    params.seed = static_cast<std::uint64_t>(seed);
    Timer gen;
    list = generate_road_network(params);
    std::printf("Generated a %lldx%lld road network in %s\n",
                static_cast<long long>(width), static_cast<long long>(height),
                format_duration_ms(gen.elapsed_ms()).c_str());
  }

  const CsrGraph g = CsrGraph::build(list);
  const GraphStats stats = compute_stats(g);
  std::printf("Network: %s\n", describe(stats).c_str());
  if (stats.num_components != 1) {
    std::fprintf(stderr,
                 "error: the road network must be connected for Prim-family "
                 "algorithms (found %zu components)\n", stats.num_components);
    return 1;
  }

  Timer solve;
  const MstResult mst = llp_prim(g);
  const double solve_ms = solve.elapsed_ms();

  const VerifyResult v = verify_spanning_forest(g, mst);
  if (!v.ok) {
    std::fprintf(stderr, "verification failed: %s\n", v.error.c_str());
    return 1;
  }

  const TotalWeight all_cost = g.total_weight();
  std::printf("\nPaving plan (LLP-Prim, %s):\n",
              format_duration_ms(solve_ms).c_str());
  std::printf("  segments selected : %s of %s candidates\n",
              format_count(mst.edges.size()).c_str(),
              format_count(g.num_edges()).c_str());
  std::printf("  total paving cost : %s (vs %s to pave everything, %.1f%% "
              "saved)\n",
              format_count(mst.total_weight).c_str(),
              format_count(all_cost).c_str(),
              100.0 * (1.0 - static_cast<double>(mst.total_weight) /
                                 static_cast<double>(all_cost)));
  std::printf("  vertices fixed without heap ops: %s of %s (%.1f%%)\n",
              format_count(mst.stats.fixed_via_mwe).c_str(),
              format_count(g.num_vertices()).c_str(),
              100.0 * static_cast<double>(mst.stats.fixed_via_mwe) /
                  static_cast<double>(g.num_vertices()));
  return 0;
}
