// Parallel Boruvka baseline ("Boruvka" in Figs. 3-4): the conventional
// bulk-synchronous formulation in the style of GBBS — atomic MWE selection,
// id-symmetry-broken hooking, *synchronized* pointer-jumping rounds, and
// deduplicating contraction.  Handles forests (MSF).
#pragma once

#include "mst/mst_result.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst {

[[nodiscard]] MstResult parallel_boruvka(const CsrGraph& g, ThreadPool& pool);

}  // namespace llpmst
